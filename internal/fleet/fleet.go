// Package fleet is the gateway in front of a replicated serving fleet: it
// accepts scheduler sessions on one address and routes each to a
// replication group of agentd daemons (a leader plus its followers,
// internal/serve replica mode). Routing is by session token with
// rendezvous hashing, so a group can be added without remapping every
// session, and a reconnecting client with a resumption token always lands
// on the same group — including after that group's leader died and a
// follower was promoted in its place.
//
// The gateway is a layer-4 proxy with exactly one protocol smart: it reads
// the hello frame — in whichever framing the client opened with, NDJSON or
// the length-prefixed binary protocol — to learn the token. A hello
// without a token gets one injected before forwarding in the same framing
// the client spoke — the daemon honors client-chosen tokens and echoes
// them in its hello reply, so the client adopts the gateway's token and
// every future reconnect hashes to the same group. After the hello the
// connection is spliced byte-for-byte (framing-agnostic); the gateway
// never parses another frame.
//
// Failover is the health monitor's job (health.go): when a group's head
// stops answering /healthz it promotes the next healthy member via
// /promote and re-homes new connections there. Clients riding a dead
// leader see a transport error, back off, re-dial the gateway, present
// their token, and resume on the promoted follower — zero protocol errors.
// The monitor also supervises the non-head members: a stray that believes
// it is a leader (a restarted ex-leader, generation-stale) is demoted and
// rejoined as a follower of the current head via POST /rejoin, and a
// demoted member is rejoined — the fleet heals itself after failover with
// no operator in the loop.
//
// Read-only hellos (core.HelloMsg.ReadOnly) are routed to a healthy
// unpromoted follower of the token's group when one exists — follower
// reads: inference-only traffic served from the follower's continuously-
// warm replicated weights, off the leader's serve path — falling back to
// the head when no follower is known healthy.
package fleet

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// Backend is one daemon of a replication group.
type Backend struct {
	// Addr is the scheduler-session (NDJSON) address.
	Addr string
	// Health is the daemon's HTTP control address (/healthz, /promote,
	// /demote, /retarget).
	Health string
	// Repl is the daemon's WAL shipping address (-repl-listen), used to
	// re-point surviving followers at a promoted member after failover.
	// Optional: when empty, followers of a dead leader keep tailing its
	// old address until an operator re-points them.
	Repl string
}

// Group is one replication group: a leader and its followers. Members[0]
// is the leader at gateway start; the health monitor moves the head on
// failover.
type Group struct {
	Name    string
	Members []Backend
}

// Config holds the gateway's knobs.
type Config struct {
	// Groups are the replication groups traffic is hashed across. At
	// least one, each with at least one member.
	Groups []Group
	// HealthInterval is the monitor's poll cadence per group (default
	// 200ms). One poll must answer within the interval to count healthy.
	HealthInterval time.Duration
	// FailThreshold is how many consecutive failed polls trigger failover
	// (default 3).
	FailThreshold int
	// DialTimeout bounds one backend dial (default 2s).
	DialTimeout time.Duration
	// HelloTimeout bounds reading the client's hello frame (default 5s).
	HelloTimeout time.Duration
	// MaxLineBytes bounds the hello frame (default 1MiB, matching the
	// daemon).
	MaxLineBytes int
	// Logf receives progress lines (default: silent).
	Logf func(format string, args ...any)
	// Registry receives the gateway's metrics (default: a fresh one).
	Registry *serve.Registry
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 200 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 5 * time.Second
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Registry == nil {
		c.Registry = serve.NewRegistry()
	}
	return c
}

// group is a Group plus its runtime routing state.
type group struct {
	Group
	// head indexes Members at the current leader; swapped by the health
	// monitor on failover, read by every routed connection.
	head atomic.Int32
	// fails counts consecutive failed health polls (monitor goroutine
	// only).
	fails int

	// roOK[i] records whether member i probed as a healthy unpromoted
	// replica — eligible to serve read-only sessions. Monitor writes,
	// router reads.
	roOK []atomic.Bool
	// roNext round-robins read-only routing across eligible followers.
	roNext atomic.Uint32
	// lastHeal rate-limits automatic demote+rejoin per member (monitor
	// goroutine only): a node that fails to rejoin is retried on a
	// cooldown, not hammered every tick.
	lastHeal []time.Time

	// connMu/conns track each spliced session's upstream connection with
	// the member it was routed to, so failover can sever everything still
	// attached to a deposed head (closing the upstream side tears down
	// both splice copies).
	connMu sync.Mutex
	conns  map[net.Conn]int32
}

// track registers a spliced upstream connection against member idx.
func (g *group) track(c net.Conn, idx int32) {
	g.connMu.Lock()
	g.conns[c] = idx
	g.connMu.Unlock()
}

func (g *group) untrack(c net.Conn) {
	g.connMu.Lock()
	delete(g.conns, c)
	g.connMu.Unlock()
}

// pickReadOnly returns a member to serve a read-only session: round-robin
// across the followers the monitor last probed as healthy unpromoted
// replicas. ok=false means no such follower is known — route to the head.
func (g *group) pickReadOnly(head int32) (int32, bool) {
	n := len(g.Members)
	if n <= 1 {
		return head, false
	}
	start := g.roNext.Add(1)
	for off := 0; off < n; off++ {
		i := int32((start + uint32(off)) % uint32(n))
		if i != head && g.roOK[i].Load() {
			return i, true
		}
	}
	return head, false
}

// sever closes every tracked connection routed to member idx and returns
// how many it cut.
func (g *group) sever(idx int32) int {
	g.connMu.Lock()
	n := 0
	for c, i := range g.conns {
		if i == idx {
			c.Close()
			delete(g.conns, c)
			n++
		}
	}
	g.connMu.Unlock()
	return n
}

// Gateway routes scheduler sessions across replication groups.
type Gateway struct {
	cfg    Config
	groups []*group
	reg    *serve.Registry
	wg     sync.WaitGroup

	mConns        *serve.Counter
	mActive       *serve.Gauge
	mIssued       *serve.Counter
	mDialErrs     *serve.Counter
	mFailovers    *serve.Counter
	mPromErrs     *serve.Counter
	mSevered      *serve.Counter
	mRetargets    *serve.Counter
	mRetargetErrs *serve.Counter
	mRejoins      *serve.Counter
	mRejoinErrs   *serve.Counter
	mRORouted     *serve.Counter
}

// NewGateway validates cfg and builds a gateway (no I/O yet; Serve runs
// it).
func NewGateway(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("fleet: no groups configured")
	}
	gw := &Gateway{cfg: cfg, reg: cfg.Registry}
	seen := map[string]bool{}
	for i, g := range cfg.Groups {
		if g.Name == "" {
			return nil, fmt.Errorf("fleet: group %d has no name", i)
		}
		if seen[g.Name] {
			return nil, fmt.Errorf("fleet: duplicate group name %q", g.Name)
		}
		seen[g.Name] = true
		if len(g.Members) == 0 {
			return nil, fmt.Errorf("fleet: group %q has no members", g.Name)
		}
		for _, b := range g.Members {
			if b.Addr == "" || b.Health == "" {
				return nil, fmt.Errorf("fleet: group %q: every member needs addr and health address", g.Name)
			}
		}
		gw.groups = append(gw.groups, &group{
			Group:    g,
			conns:    map[net.Conn]int32{},
			roOK:     make([]atomic.Bool, len(g.Members)),
			lastHeal: make([]time.Time, len(g.Members)),
		})
	}
	gw.mConns = gw.reg.Counter("fleet_conns_total")
	gw.mActive = gw.reg.Gauge("fleet_conns_active")
	gw.mIssued = gw.reg.Counter("fleet_tokens_issued_total")
	gw.mDialErrs = gw.reg.Counter("fleet_backend_dial_errors_total")
	gw.mFailovers = gw.reg.Counter("fleet_failovers_total")
	gw.mPromErrs = gw.reg.Counter("fleet_promote_errors_total")
	gw.mSevered = gw.reg.Counter("fleet_conns_severed_total")
	gw.mRetargets = gw.reg.Counter("fleet_retargets_total")
	gw.mRetargetErrs = gw.reg.Counter("fleet_retarget_errors_total")
	gw.mRejoins = gw.reg.Counter("fleet_rejoins_total")
	gw.mRejoinErrs = gw.reg.Counter("fleet_rejoin_errors_total")
	gw.mRORouted = gw.reg.Counter("fleet_readonly_routed_total")
	return gw, nil
}

// Serve accepts and routes sessions on l until ctx ends or the listener
// closes, then waits for the health monitors (spliced connections drain on
// their own as the peers hang up).
func (gw *Gateway) Serve(ctx context.Context, l net.Listener) error {
	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for _, g := range gw.groups {
		gw.wg.Add(1)
		go func(g *group) {
			defer gw.wg.Done()
			gw.monitor(mctx, g)
		}(g)
	}
	stop := context.AfterFunc(ctx, func() { l.Close() })
	defer stop()
	var err error
	for {
		conn, aerr := core.AcceptRetry(l)
		if aerr != nil {
			if ctx.Err() == nil {
				err = aerr
			}
			break
		}
		gw.wg.Add(1)
		go func() {
			defer gw.wg.Done()
			gw.handleConn(conn)
		}()
	}
	cancel()
	gw.wg.Wait()
	return err
}

// route picks the rendezvous-hash winner for token: the group whose
// keyed hash of the token is highest. Every gateway instance computes the
// same winner, and adding a group only moves the tokens that now hash
// highest there.
func (gw *Gateway) route(token string) *group {
	best, bestScore := gw.groups[0], uint64(0)
	for i, g := range gw.groups {
		h := fnv.New64a()
		_, _ = io.WriteString(h, token) // hash.Hash writes cannot fail
		_, _ = io.WriteString(h, "/")
		_, _ = io.WriteString(h, g.Name)
		if s := h.Sum64(); i == 0 || s > bestScore {
			best, bestScore = g, s
		}
	}
	return best
}

// newToken mints a session token no daemon has seen: 16 random bytes,
// hex-encoded. Randomness (not a counter) keeps tokens unique across
// gateway restarts, so a fresh client can never collide with — and silently
// resume — a session some earlier gateway issued.
func (gw *Gateway) newToken() string {
	var b [16]byte
	_, _ = rand.Read(b[:]) // crypto/rand.Read cannot fail (it panics instead)
	return "fleet-" + hex.EncodeToString(b[:])
}

// handleConn reads the hello, routes by token, forwards the hello to the
// group's head, and splices the rest of the session byte-for-byte.
func (gw *Gateway) handleConn(conn net.Conn) {
	defer conn.Close()
	gw.mConns.Inc()
	gw.mActive.Add(1)
	defer gw.mActive.Add(-1)

	br := bufio.NewReader(conn)
	if conn.SetReadDeadline(time.Now().Add(gw.cfg.HelloTimeout)) != nil {
		return
	}
	binary, err := core.SniffBinary(br)
	if err != nil {
		return // no hello, nothing to route
	}
	w := core.NewWire(br, conn, gw.cfg.MaxLineBytes, binary)
	var hello core.HelloMsg
	if err := w.ReadHello(&hello); err != nil {
		// Only reply once the peer is synchronized: a complete frame with a
		// bad payload, or an oversized frame fully drained. A torn frame
		// gets silence — any reply would land mid-frame.
		if !core.IsMalformed(err) &&
			!(errors.Is(err, core.ErrFrameTooLong) && w.Drain() == nil) {
			return
		}
		gw.reply(w, conn, &core.SolutionMsg{Err: "fleet: malformed hello"})
		return
	}
	if hello.Token == "" {
		// Inject a token: the daemon echoes it in the hello reply, the
		// client adopts it, and every reconnect hashes back to this group.
		hello.Token = gw.newToken()
		gw.mIssued.Inc()
	}
	g := gw.route(hello.Token)
	idx := g.head.Load()
	if hello.ReadOnly {
		// Follower reads: inference-only sessions go to a healthy
		// unpromoted follower when the monitor knows one, keeping them off
		// the leader's serve path; otherwise the head answers them too.
		if ri, ok := g.pickReadOnly(idx); ok {
			idx = ri
			gw.mRORouted.Inc()
		}
	}
	backend := g.Members[idx]

	d := net.Dialer{Timeout: gw.cfg.DialTimeout}
	up, err := d.Dial("tcp", backend.Addr)
	if err != nil {
		// The head is (re)starting or mid-failover: tell the client to
		// back off and re-dial, exactly like a daemon shedding load. By
		// its next attempt the monitor has re-homed the head.
		gw.mDialErrs.Inc()
		gw.reply(w, conn, &core.SolutionMsg{Err: "retry: fleet: backend unavailable", Retry: true})
		return
	}
	defer up.Close()
	// Track the upstream against the member it was routed to: if that
	// member is deposed, failover severs the splice so the client
	// re-dials instead of riding a fenced-off leader.
	g.track(up, idx)
	defer g.untrack(up)
	// Re-encode the (possibly token-injected) hello to the backend in the
	// client's framing, so the spliced session stays in one protocol
	// end-to-end.
	var buf []byte
	if binary {
		buf = core.AppendHelloBin(nil, &hello)
	} else {
		buf = append(core.AppendHelloJSON(nil, &hello), '\n')
	}
	if up.SetWriteDeadline(time.Now().Add(gw.cfg.HelloTimeout)) != nil {
		return
	}
	if _, err := up.Write(buf); err != nil {
		gw.reply(w, conn, &core.SolutionMsg{Err: "retry: fleet: backend unavailable", Retry: true})
		return
	}
	if up.SetWriteDeadline(time.Time{}) != nil || conn.SetReadDeadline(time.Time{}) != nil {
		return
	}

	// Splice. Client→backend copies from br (it may hold bytes read past
	// the hello frame). Either side ending tears down both, so the peer's
	// copy unblocks.
	done := make(chan struct{}, 2)
	go func() {
		_, _ = io.Copy(up, br)
		up.Close()
		conn.Close()
		done <- struct{}{}
	}()
	go func() {
		_, _ = io.Copy(conn, up)
		up.Close()
		conn.Close()
		done <- struct{}{}
	}()
	<-done
	<-done
}

// reply writes one solution frame to the client in its own framing
// (best-effort, bounded).
func (gw *Gateway) reply(w *core.Wire, conn net.Conn, sol *core.SolutionMsg) {
	if conn.SetWriteDeadline(time.Now().Add(gw.cfg.HelloTimeout)) != nil {
		return
	}
	_ = w.WriteSolution(sol)
}

// Head returns the session address currently routed to for group name
// (tests and /healthz).
func (gw *Gateway) Head(name string) string {
	for _, g := range gw.groups {
		if g.Name == name {
			return g.Members[g.head.Load()].Addr
		}
	}
	return ""
}

// Handler returns the gateway's HTTP control surface: /metrics with the
// registry and /healthz with per-group heads.
func (gw *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", gw.reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		type groupStatus struct {
			Name string `json:"name"`
			Head string `json:"head"`
		}
		var groups []groupStatus
		for _, g := range gw.groups {
			groups = append(groups, groupStatus{Name: g.Name, Head: g.Members[g.head.Load()].Addr})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":    "ok",
			"groups":    groups,
			"failovers": gw.mFailovers.Value(),
		})
	})
	return mux
}
