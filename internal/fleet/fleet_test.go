package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func TestNewGatewayValidation(t *testing.T) {
	b := Backend{Addr: "a:1", Health: "a:2"}
	for _, tc := range []struct {
		name string
		cfg  Config
		want string
	}{
		{"no groups", Config{}, "no groups"},
		{"unnamed", Config{Groups: []Group{{Members: []Backend{b}}}}, "no name"},
		{"duplicate", Config{Groups: []Group{
			{Name: "g", Members: []Backend{b}},
			{Name: "g", Members: []Backend{b}},
		}}, "duplicate"},
		{"empty members", Config{Groups: []Group{{Name: "g"}}}, "no members"},
		{"missing health", Config{Groups: []Group{{Name: "g", Members: []Backend{{Addr: "a:1"}}}}}, "health"},
	} {
		if _, err := NewGateway(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want an error mentioning %q", tc.name, err, tc.want)
		}
	}
}

// TestRouteDeterministicAndSpread: rendezvous routing is a pure function
// of (token, group names) — two gateway instances agree on every token —
// and tokens actually spread across groups.
func TestRouteDeterministicAndSpread(t *testing.T) {
	mk := func() *Gateway {
		gw, err := NewGateway(Config{Groups: []Group{
			{Name: "g0", Members: []Backend{{Addr: "a:1", Health: "a:2"}}},
			{Name: "g1", Members: []Backend{{Addr: "b:1", Health: "b:2"}}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return gw
	}
	gw1, gw2 := mk(), mk()
	hits := map[string]int{}
	for i := 0; i < 200; i++ {
		tok := fmt.Sprintf("session-%d", i)
		g1, g2 := gw1.route(tok), gw2.route(tok)
		if g1.Name != g2.Name {
			t.Fatalf("token %q routed to %s and %s by identical gateways", tok, g1.Name, g2.Name)
		}
		hits[g1.Name]++
	}
	if hits["g0"] == 0 || hits["g1"] == 0 {
		t.Fatalf("rendezvous hashing sent everything one way: %v", hits)
	}
	if gw1.Head("g0") != "a:1" || gw1.Head("missing") != "" {
		t.Fatalf("Head: %q / %q", gw1.Head("g0"), gw1.Head("missing"))
	}
}

// TestGatewayInjectsTokenAndSplices drives one session through a live
// gateway against a scripted backend: the tokenless hello gets a fleet
// token injected before forwarding, the backend's reply reaches the
// client unmodified, and post-hello bytes splice both ways.
func TestGatewayInjectsTokenAndSplices(t *testing.T) {
	backendLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backendLn.Close()
	sawHello := make(chan serve.HelloMsg, 1)
	go func() {
		conn, err := backendLn.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		line, err := br.ReadBytes('\n')
		if err != nil {
			return
		}
		var hello serve.HelloMsg
		json.Unmarshal(line, &hello)
		sawHello <- hello
		// Echo the token back like the daemon's hello reply, then echo
		// every later line verbatim (the splice-proof stage).
		json.NewEncoder(conn).Encode(map[string]string{"token": hello.Token})
		for {
			line, err := br.ReadBytes('\n')
			if err != nil {
				return
			}
			conn.Write(line)
		}
	}()

	gw, err := NewGateway(Config{
		Groups: []Group{{Name: "g0", Members: []Backend{
			{Addr: backendLn.Addr().String(), Health: "127.0.0.1:1"},
		}}},
		HealthInterval: time.Hour, // keep the monitor quiet; health is not under test
	})
	if err != nil {
		t.Fatal(err)
	}
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- gw.Serve(ctx, gwLn) }()
	defer func() {
		cancel()
		if err := <-served; err != nil {
			t.Errorf("gateway Serve: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", gwLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, `{"topology":"t","n":6,"m":3,"spouts":2}`+"\n")

	backendHello := <-sawHello
	if !strings.HasPrefix(backendHello.Token, "fleet-") {
		t.Fatalf("backend saw token %q; want an injected fleet token", backendHello.Token)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, backendHello.Token) {
		t.Fatalf("hello reply %q does not carry the injected token", line)
	}
	if got := gw.reg.Counter("fleet_tokens_issued_total").Value(); got != 1 {
		t.Fatalf("fleet_tokens_issued_total = %d, want 1", got)
	}
	// Post-hello bytes splice verbatim.
	fmt.Fprintf(conn, "ping-after-hello\n")
	line, err = br.ReadString('\n')
	if err != nil || line != "ping-after-hello\n" {
		t.Fatalf("splice echoed %q, %v", line, err)
	}
}

// TestGatewayShedsOnDeadBackend: a dial failure turns into a retryable
// shed reply, not a dropped connection or a protocol error.
func TestGatewayShedsOnDeadBackend(t *testing.T) {
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	gw, err := NewGateway(Config{
		Groups:         []Group{{Name: "g0", Members: []Backend{{Addr: deadAddr, Health: "127.0.0.1:1"}}}},
		HealthInterval: time.Hour,
		DialTimeout:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- gw.Serve(ctx, gwLn) }()
	defer func() {
		cancel()
		<-served
	}()

	conn, err := net.Dial("tcp", gwLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, `{"token":"tok-1"}`+"\n")
	var reply struct {
		Err   string `json:"err"`
		Retry bool   `json:"retry"`
	}
	if err := json.NewDecoder(conn).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if !reply.Retry || !strings.Contains(reply.Err, "backend unavailable") {
		t.Fatalf("dead backend reply %+v; want a retryable shed", reply)
	}
	if got := gw.reg.Counter("fleet_backend_dial_errors_total").Value(); got != 1 {
		t.Fatalf("fleet_backend_dial_errors_total = %d, want 1", got)
	}
}

// TestGatewayBinaryHello drives a binary-framing session through the
// gateway: the hello is sniffed and decoded from the binary framing, the
// injected fleet token is re-encoded to the backend in the SAME framing,
// and post-hello binary frames splice verbatim.
func TestGatewayBinaryHello(t *testing.T) {
	backendLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backendLn.Close()
	sawHello := make(chan core.HelloMsg, 1)
	go func() {
		conn, err := backendLn.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := core.NewBinFrameReader(bufio.NewReader(conn), 1<<20)
		typ, payload, err := br.Next()
		if err != nil || typ != core.BinTypeHello {
			return
		}
		var hello core.HelloMsg
		if core.DecodeHelloBin(payload, &hello) != nil {
			return
		}
		sawHello <- hello
		// Hello reply in the binary framing, then echo frames verbatim.
		if _, err := conn.Write(core.AppendSolutionBin(nil, &core.SolutionMsg{Token: hello.Token})); err != nil {
			return
		}
		for {
			typ, payload, err := br.Next()
			if err != nil {
				return
			}
			if typ != core.BinTypeMeasurement {
				return
			}
			var meas core.MeasurementMsg
			if core.DecodeMeasurementBin(payload, &meas) != nil {
				return
			}
			if _, err := conn.Write(core.AppendSolutionBin(nil, &core.SolutionMsg{Epoch: meas.Epoch})); err != nil {
				return
			}
		}
	}()

	gw, err := NewGateway(Config{
		Groups: []Group{{Name: "g0", Members: []Backend{
			{Addr: backendLn.Addr().String(), Health: "127.0.0.1:1"},
		}}},
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- gw.Serve(ctx, gwLn) }()
	defer func() {
		cancel()
		if err := <-served; err != nil {
			t.Errorf("gateway Serve: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", gwLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(core.AppendHelloBin(nil, &core.HelloMsg{Topology: "t", N: 6, M: 3, Spouts: 2})); err != nil {
		t.Fatal(err)
	}

	backendHello := <-sawHello
	if !strings.HasPrefix(backendHello.Token, "fleet-") {
		t.Fatalf("backend saw token %q; want an injected fleet token", backendHello.Token)
	}
	br := core.NewBinFrameReader(bufio.NewReader(conn), 1<<20)
	typ, payload, err := br.Next()
	if err != nil || typ != core.BinTypeSolution {
		t.Fatalf("hello reply frame: type %d, %v", typ, err)
	}
	var sol core.SolutionMsg
	if err := core.DecodeSolutionBin(payload, &sol); err != nil {
		t.Fatal(err)
	}
	if sol.Token != backendHello.Token {
		t.Fatalf("hello reply token %q, want injected %q", sol.Token, backendHello.Token)
	}
	// Post-hello frames splice verbatim in both directions.
	if _, err := conn.Write(core.AppendMeasurementBin(nil, &core.MeasurementMsg{Epoch: 7, Workload: []float64{1, 2}})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = br.Next()
	if err != nil || typ != core.BinTypeSolution {
		t.Fatalf("spliced reply frame: type %d, %v", typ, err)
	}
	if err := core.DecodeSolutionBin(payload, &sol); err != nil {
		t.Fatal(err)
	}
	if sol.Epoch != 7 {
		t.Fatalf("spliced reply epoch %d, want 7", sol.Epoch)
	}
}

// TestGatewayShedsBinaryClientInKind: a binary-hello client shed on a
// dead backend gets its retry reply in the binary framing.
func TestGatewayShedsBinaryClientInKind(t *testing.T) {
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	gw, err := NewGateway(Config{
		Groups:         []Group{{Name: "g0", Members: []Backend{{Addr: deadAddr, Health: "127.0.0.1:1"}}}},
		HealthInterval: time.Hour,
		DialTimeout:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- gw.Serve(ctx, gwLn) }()
	defer func() {
		cancel()
		<-served
	}()

	conn, err := net.Dial("tcp", gwLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(core.AppendHelloBin(nil, &core.HelloMsg{Token: "tok-1"})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := core.NewBinFrameReader(bufio.NewReader(conn), 1<<20).Next()
	if err != nil || typ != core.BinTypeSolution {
		t.Fatalf("shed reply frame: type %d, %v", typ, err)
	}
	var sol core.SolutionMsg
	if err := core.DecodeSolutionBin(payload, &sol); err != nil {
		t.Fatal(err)
	}
	if !sol.Retry || !strings.Contains(sol.Err, "backend unavailable") {
		t.Fatalf("dead backend reply %+v; want a retryable shed", sol)
	}
}
