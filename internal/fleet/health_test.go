package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ctrl is a scripted daemon control surface: /healthz answers by flag
// (optionally reporting a role, optionally hanging without answering at
// all), every other POST is recorded (with its decoded addr param, when
// present) and answered 200.
type ctrl struct {
	srv     *httptest.Server
	healthy atomic.Bool
	hang    atomic.Bool  // accept /healthz but never answer (SIGSTOP, wedged disk)
	probes  atomic.Int64 // /healthz hits, hung or not
	mu      sync.Mutex
	role    string // reported in the /healthz body when non-empty
	posts   []string
}

func newCtrl(t *testing.T) *ctrl {
	t.Helper()
	c := &ctrl{}
	c.healthy.Store(true)
	c.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			c.probes.Add(1)
			if c.hang.Load() {
				<-r.Context().Done() // hold the probe open until the gateway gives up
				return
			}
			if !c.healthy.Load() {
				http.Error(w, "stalled", http.StatusServiceUnavailable)
				return
			}
			c.mu.Lock()
			role := c.role
			c.mu.Unlock()
			if role != "" {
				fmt.Fprintf(w, "{\"role\":%q}\n", role)
			}
			return
		}
		if r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		p := r.URL.Path
		if a := r.FormValue("addr"); a != "" {
			p += "?addr=" + a
		}
		c.mu.Lock()
		c.posts = append(c.posts, p)
		c.mu.Unlock()
	}))
	t.Cleanup(c.srv.Close)
	return c
}

// addr returns the control surface as host:port (Backend.Health form).
func (c *ctrl) addr() string { return strings.TrimPrefix(c.srv.URL, "http://") }

// setRole scripts the role the /healthz body reports from now on.
func (c *ctrl) setRole(role string) {
	c.mu.Lock()
	c.role = role
	c.mu.Unlock()
}

func (c *ctrl) got(prefix string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.posts {
		if strings.HasPrefix(p, prefix) {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startGateway serves gw on a fresh listener and returns its address.
func startGateway(t *testing.T, gw *Gateway) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- gw.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-served; err != nil {
			t.Errorf("gateway Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestFailoverFencesAndRetargets drives a three-member group through a
// stalled-leader failover and pins the whole fencing sequence: the
// client's spliced connection to the deposed head is severed, the head is
// told to demote (it is alive, just not answering health polls in time),
// the next member is promoted and becomes the routing head, and the
// surviving follower is re-pointed at the promoted node's WAL shipping
// address — nobody keeps tailing, serving, or riding the deposed leader.
func TestFailoverFencesAndRetargets(t *testing.T) {
	// Member A gets a live scripted session backend (hello reply, then
	// echo) so a real spliced connection exists to sever. B and C only
	// need control surfaces: nothing dials their session addresses here.
	backendLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backendLn.Close()
	go func() {
		for {
			conn, err := backendLn.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				if _, err := br.ReadBytes('\n'); err != nil {
					return
				}
				json.NewEncoder(conn).Encode(map[string]string{"token": "ok"})
				for {
					line, err := br.ReadBytes('\n')
					if err != nil {
						return
					}
					conn.Write(line)
				}
			}(conn)
		}
	}()
	ctrlA, ctrlB, ctrlC := newCtrl(t), newCtrl(t), newCtrl(t)

	gw, err := NewGateway(Config{
		Groups: []Group{{Name: "g0", Members: []Backend{
			{Addr: backendLn.Addr().String(), Health: ctrlA.addr(), Repl: "10.0.0.1:7702"},
			{Addr: "127.0.0.1:9002", Health: ctrlB.addr(), Repl: "10.0.0.2:7702"},
			{Addr: "127.0.0.1:9003", Health: ctrlC.addr(), Repl: "10.0.0.3:7702"},
		}}},
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  2,
		DialTimeout:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	gwAddr := startGateway(t, gw)

	// A session rides the leader through the gateway.
	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, `{"token":"ride-1"}`+"\n")
	br := bufio.NewReader(conn)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("hello reply: %v", err)
	}
	fmt.Fprintf(conn, "ping\n")
	if line, err := br.ReadString('\n'); err != nil || line != "ping\n" {
		t.Fatalf("splice echoed %q, %v", line, err)
	}

	// The leader stalls: health polls fail, but the process — and the
	// spliced session it is serving — stays alive.
	ctrlA.healthy.Store(false)

	waitFor(t, "failover", func() bool { return gw.reg.Counter("fleet_failovers_total").Value() == 1 })
	if got := gw.Head("g0"); got != "127.0.0.1:9002" {
		t.Fatalf("head after failover = %q, want the promoted member 127.0.0.1:9002", got)
	}
	if !ctrlB.got("/promote") {
		t.Fatal("promoted member never received POST /promote")
	}
	waitFor(t, "deposed head demote", func() bool { return ctrlA.got("/demote") })
	// The surviving follower is re-pointed at the promoted node's
	// shipping address; the promoted node and the deposed one are not.
	waitFor(t, "survivor retarget", func() bool { return gw.reg.Counter("fleet_retargets_total").Value() == 1 })
	if !ctrlC.got("/retarget?addr=10.0.0.2:7702") {
		t.Fatal("survivor never received the promoted node's shipping address")
	}
	if ctrlB.got("/retarget") {
		t.Fatal("promoted member was retargeted at itself")
	}
	if ctrlA.got("/retarget") {
		t.Fatal("deposed member was retargeted")
	}
	if got := gw.reg.Counter("fleet_retarget_errors_total").Value(); got != 0 {
		t.Fatalf("fleet_retarget_errors_total = %d, want 0", got)
	}

	// The spliced connection to the deposed head was severed, so its
	// client re-dials the gateway instead of riding a fenced-off leader.
	if got := gw.reg.Counter("fleet_conns_severed_total").Value(); got != 1 {
		t.Fatalf("fleet_conns_severed_total = %d, want 1", got)
	}
	if line, err := br.ReadString('\n'); err == nil {
		t.Fatalf("read on a severed splice returned %q; want a transport error", line)
	}
}

// TestFailoverSkipsRetargetWithoutReplAddr: when the promoted member has
// no shipping address configured, the gateway leaves the survivors alone
// (re-pointing them is the operator's job) instead of POSTing a useless
// or malformed retarget.
func TestFailoverSkipsRetargetWithoutReplAddr(t *testing.T) {
	ctrlA, ctrlB, ctrlC := newCtrl(t), newCtrl(t), newCtrl(t)
	gw, err := NewGateway(Config{
		Groups: []Group{{Name: "g0", Members: []Backend{
			{Addr: "127.0.0.1:9001", Health: ctrlA.addr(), Repl: "10.0.0.1:7702"},
			{Addr: "127.0.0.1:9002", Health: ctrlB.addr()}, // promoted, no Repl
			{Addr: "127.0.0.1:9003", Health: ctrlC.addr(), Repl: "10.0.0.3:7702"},
		}}},
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  2,
		DialTimeout:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	startGateway(t, gw)

	ctrlA.healthy.Store(false)
	waitFor(t, "failover", func() bool { return gw.reg.Counter("fleet_failovers_total").Value() == 1 })
	waitFor(t, "deposed head demote", func() bool { return ctrlA.got("/demote") })
	// retargetFollowers runs synchronously inside the failover, which has
	// finished by the time the demote above was recorded; give stray posts
	// a few poll intervals anyway before asserting silence.
	time.Sleep(100 * time.Millisecond)
	if ctrlC.got("/retarget") {
		t.Fatal("survivor was retargeted although the promoted member ships nothing")
	}
	if got := gw.reg.Counter("fleet_retargets_total").Value(); got != 0 {
		t.Fatalf("fleet_retargets_total = %d, want 0", got)
	}
}
