package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// newEchoBackend starts a scripted session backend that answers every
// hello with the given token and then echoes lines, so a test can tell
// which member a spliced connection landed on.
func newEchoBackend(t *testing.T, token string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				if _, err := br.ReadBytes('\n'); err != nil {
					return
				}
				json.NewEncoder(conn).Encode(map[string]string{"token": token})
				for {
					line, err := br.ReadBytes('\n')
					if err != nil {
						return
					}
					conn.Write(line)
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestHungHealthzFailsOver: a leader whose /healthz ACCEPTS the probe but
// never answers — SIGSTOP, a wedged disk, a full accept queue draining at
// a crawl — must be treated exactly like a dead one. The probe carries a
// request-level deadline (one health interval), so a hang converts into a
// missed poll instead of parking the monitor loop forever; FailThreshold
// hangs later the group fails over.
func TestHungHealthzFailsOver(t *testing.T) {
	ctrlA, ctrlB, ctrlC := newCtrl(t), newCtrl(t), newCtrl(t)
	gw, err := NewGateway(Config{
		Groups: []Group{{Name: "g0", Members: []Backend{
			{Addr: "127.0.0.1:9001", Health: ctrlA.addr(), Repl: "10.0.0.1:7702"},
			{Addr: "127.0.0.1:9002", Health: ctrlB.addr(), Repl: "10.0.0.2:7702"},
			{Addr: "127.0.0.1:9003", Health: ctrlC.addr(), Repl: "10.0.0.3:7702"},
		}}},
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  2,
		DialTimeout:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	startGateway(t, gw)

	// Let the monitor see a healthy leader first, then wedge it.
	waitFor(t, "first probe", func() bool { return ctrlA.probes.Load() >= 1 })
	ctrlA.hang.Store(true)
	start := time.Now()
	waitFor(t, "failover off the hung leader", func() bool {
		return gw.reg.Counter("fleet_failovers_total").Value() == 1
	})
	// Each probe is clamped to one health interval, so two misses resolve
	// in a handful of 20ms ticks. Anything in whole-second territory means
	// the hang rode a connection-level timeout instead of the probe
	// deadline (or worse, blocked until the scripted server was torn down).
	if d := time.Since(start); d > 1500*time.Millisecond {
		t.Fatalf("failover took %v; hung probes are not being deadlined", d)
	}
	if got := gw.Head("g0"); got != "127.0.0.1:9002" {
		t.Fatalf("head after failover = %q, want 127.0.0.1:9002", got)
	}
	if !ctrlB.got("/promote") {
		t.Fatal("promoted member never received POST /promote")
	}
	waitFor(t, "deposed head demote", func() bool { return ctrlA.got("/demote") })
}

// TestSuperviseHealsStrayLeader: a non-head member probing healthy with
// role "leader" is a restarted ex-leader — a split generation in the
// making, since it owns the same tokens under a stale generation. The
// monitor must demote it and rejoin it at the head's shipping address,
// and must leave a well-behaved replica member alone.
func TestSuperviseHealsStrayLeader(t *testing.T) {
	ctrlA, ctrlB, ctrlC := newCtrl(t), newCtrl(t), newCtrl(t)
	ctrlA.setRole("leader")
	ctrlB.setRole("leader") // stray: restarted from its old data dir
	ctrlC.setRole("replica")
	gw, err := NewGateway(Config{
		Groups: []Group{{Name: "g0", Members: []Backend{
			{Addr: "127.0.0.1:9001", Health: ctrlA.addr(), Repl: "10.0.0.1:7702"},
			{Addr: "127.0.0.1:9002", Health: ctrlB.addr(), Repl: "10.0.0.2:7702"},
			{Addr: "127.0.0.1:9003", Health: ctrlC.addr(), Repl: "10.0.0.3:7702"},
		}}},
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  2,
		DialTimeout:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	startGateway(t, gw)

	waitFor(t, "stray demote", func() bool { return ctrlB.got("/demote") })
	waitFor(t, "stray rejoin at the head", func() bool {
		return ctrlB.got("/rejoin?addr=10.0.0.1:7702")
	})
	waitFor(t, "rejoin counted", func() bool {
		return gw.reg.Counter("fleet_rejoins_total").Value() >= 1
	})
	// The head never wavered: healing a stray is not a failover.
	if got := gw.reg.Counter("fleet_failovers_total").Value(); got != 0 {
		t.Fatalf("fleet_failovers_total = %d, want 0", got)
	}
	if got := gw.Head("g0"); got != "127.0.0.1:9001" {
		t.Fatalf("head = %q, want the original 127.0.0.1:9001", got)
	}
	// The replica member got no control posts at all.
	if ctrlC.got("/") {
		t.Fatal("well-behaved replica received a control post")
	}
	if got := gw.reg.Counter("fleet_rejoin_errors_total").Value(); got != 0 {
		t.Fatalf("fleet_rejoin_errors_total = %d, want 0", got)
	}
}

// TestSuperviseRejoinsDemotedStray: a member already fenced (role
// "demoted" — the failover's demote landed, or it fenced itself) skips
// the demote leg and goes straight to /rejoin.
func TestSuperviseRejoinsDemotedStray(t *testing.T) {
	ctrlA, ctrlB := newCtrl(t), newCtrl(t)
	ctrlA.setRole("leader")
	ctrlB.setRole("demoted")
	gw, err := NewGateway(Config{
		Groups: []Group{{Name: "g0", Members: []Backend{
			{Addr: "127.0.0.1:9001", Health: ctrlA.addr(), Repl: "10.0.0.1:7702"},
			{Addr: "127.0.0.1:9002", Health: ctrlB.addr(), Repl: "10.0.0.2:7702"},
		}}},
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  2,
		DialTimeout:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	startGateway(t, gw)

	waitFor(t, "demoted stray rejoin", func() bool {
		return ctrlB.got("/rejoin?addr=10.0.0.1:7702")
	})
	if ctrlB.got("/demote") {
		t.Fatal("already-demoted member was demoted again")
	}
}

// TestReadOnlyRoutesToFollower: a hello carrying readonly lands on a
// member the monitor has probed as a healthy unpromoted replica, keeping
// inference-only traffic off the leader's serve path; a full session
// keeps going to the head.
func TestReadOnlyRoutesToFollower(t *testing.T) {
	headAddr := newEchoBackend(t, "via-head")
	followerAddr := newEchoBackend(t, "via-follower")
	ctrlA, ctrlB := newCtrl(t), newCtrl(t)
	ctrlA.setRole("leader")
	ctrlB.setRole("replica")
	gw, err := NewGateway(Config{
		Groups: []Group{{Name: "g0", Members: []Backend{
			{Addr: headAddr, Health: ctrlA.addr(), Repl: "10.0.0.1:7702"},
			{Addr: followerAddr, Health: ctrlB.addr(), Repl: "10.0.0.2:7702"},
		}}},
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  3,
		DialTimeout:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	gwAddr := startGateway(t, gw)

	// Routing eligibility comes from the monitor's probes; wait until the
	// follower has been seen as a replica at least once.
	waitFor(t, "follower probed", func() bool { return ctrlB.probes.Load() >= 1 })

	dialHello := func(hello string) string {
		t.Helper()
		conn, err := net.Dial("tcp", gwAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		fmt.Fprintln(conn, hello)
		reply, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			t.Fatalf("hello reply: %v", err)
		}
		return reply
	}

	// ReadOnly sessions may race the very first supervise tick; the
	// monitor marks the follower eligible within a tick or two.
	waitFor(t, "read-only hello routed to the follower", func() bool {
		return strings.Contains(dialHello(`{"token":"ro-1","readonly":true}`), "via-follower")
	})
	if got := gw.reg.Counter("fleet_readonly_routed_total").Value(); got < 1 {
		t.Fatalf("fleet_readonly_routed_total = %d, want >= 1", got)
	}
	// Full sessions still ride the head.
	if reply := dialHello(`{"token":"rw-1"}`); !strings.Contains(reply, "via-head") {
		t.Fatalf("full session reply %q; want it spliced to the head", reply)
	}
}
