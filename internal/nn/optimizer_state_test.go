package nn

import (
	"math/rand"
	"reflect"
	"testing"
)

// adamTrainStep runs one deterministic forward/backward/step cycle.
func adamTrainStep(net *Network, opt *Adam, i int) {
	x := []float64{0.3, -0.7, 0.1 * float64(i%7), 0.9}
	out := net.Forward(x)
	dOut := make([]float64, len(out))
	for j, v := range out {
		dOut[j] = v - float64(j%2) // pull toward an arbitrary fixed target
	}
	net.ZeroGrads()
	net.Backward(dOut, 1)
	opt.Step(net)
}

// TestAdamStateRoundTrip: transplanting State() into a fresh Adam resumes
// the exact optimization trajectory — a network trained straight through
// and one whose optimizer was serialized and restored mid-run end with
// bitwise-identical weights. Without the moments the trajectories
// diverge, which is exactly the drift snapshot v2 exists to eliminate.
func TestAdamStateRoundTrip(t *testing.T) {
	mkNet := func() *Network {
		return New([]int{4, 6, 5, 3}, Tanh, Identity, rand.New(rand.NewSource(7)))
	}
	ref, refOpt := mkNet(), NewAdam(0.01)
	sub, subOpt := mkNet(), NewAdam(0.01)
	for i := 0; i < 10; i++ {
		adamTrainStep(ref, refOpt, i)
		adamTrainStep(sub, subOpt, i)
	}

	// Serialize sub's optimizer into a fresh one; also branch a control
	// that restarts with cold moments.
	st := subOpt.State()
	if st.T != 10 || len(st.MW) != 3 {
		t.Fatalf("captured state T=%d with %d moment layers; want T=10 over 3 layers", st.T, len(st.MW))
	}
	restored := NewAdam(0.01)
	if err := restored.SetState(st, sub); err != nil {
		t.Fatal(err)
	}
	// The round trip itself is lossless.
	if !reflect.DeepEqual(restored.State(), st) {
		t.Fatal("State→SetState→State round trip is not identity")
	}
	cold, coldOpt := mkNet(), NewAdam(0.01)
	coldSrc := sub.Snapshot(nil)
	if err := cold.Restore(coldSrc); err != nil {
		t.Fatal(err)
	}

	for i := 10; i < 20; i++ {
		adamTrainStep(ref, refOpt, i)
		adamTrainStep(sub, restored, i)
		adamTrainStep(cold, coldOpt, i)
	}
	if ref.Checksum() != sub.Checksum() {
		t.Fatalf("restored-optimizer run diverged: %016x != %016x", sub.Checksum(), ref.Checksum())
	}
	if ref.Checksum() == cold.Checksum() {
		t.Fatal("cold-moment run matched the reference; the test lost its power to detect moment loss")
	}
}

// TestAdamSetStateMismatch: moments shaped for a different network are
// refused without touching the optimizer.
func TestAdamSetStateMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	big := New([]int{4, 6, 5, 3}, Tanh, Identity, rng)
	small := New([]int{4, 3}, Tanh, Identity, rng)
	opt := NewAdam(0.01)
	adamTrainStep(big, opt, 0)
	st := opt.State()

	other := NewAdam(0.01)
	if err := other.SetState(st, small); err == nil {
		t.Fatal("layer-count mismatch accepted")
	}
	bad := opt.State()
	bad.MW[0] = bad.MW[0][:3] // right layer count, wrong element count
	if err := other.SetState(bad, big); err == nil {
		t.Fatal("layer-shape mismatch accepted")
	}
	if other.t != 0 || other.mw != nil {
		t.Fatal("failed SetState left partial state behind")
	}
}

// TestAdamSetStateEmptyResets: the "never stepped" state restores the
// lazy initial condition, after which training matches a truly fresh
// optimizer.
func TestAdamSetStateEmptyResets(t *testing.T) {
	mkNet := func() *Network {
		return New([]int{4, 6, 3}, Tanh, Identity, rand.New(rand.NewSource(3)))
	}
	a, aOpt := mkNet(), NewAdam(0.01)
	adamTrainStep(a, aOpt, 0)
	// Rewind the weights AND reset the optimizer: must equal a fresh run.
	fresh := mkNet()
	if err := a.Restore(fresh.Snapshot(nil)); err != nil {
		t.Fatal(err)
	}
	if err := aOpt.SetState(&AdamState{}, a); err != nil {
		t.Fatal(err)
	}
	b, bOpt := mkNet(), NewAdam(0.01)
	for i := 0; i < 5; i++ {
		adamTrainStep(a, aOpt, i)
		adamTrainStep(b, bOpt, i)
	}
	if a.Checksum() != b.Checksum() {
		t.Fatal("empty-state reset did not restore the pre-first-Step condition")
	}
}
