package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestActivationString(t *testing.T) {
	cases := map[Activation]string{Identity: "identity", Tanh: "tanh", ReLU: "relu", Sigmoid: "sigmoid"}
	for a, want := range cases {
		if a.String() != want {
			t.Fatalf("String()=%q want %q", a.String(), want)
		}
	}
}

func TestActivationDerivatives(t *testing.T) {
	// derivFromOutput must agree with a numerical derivative of apply.
	for _, act := range []Activation{Identity, Tanh, Sigmoid} {
		for _, z := range []float64{-2, -0.5, 0.1, 1.5} {
			y := act.apply(z)
			h := 1e-6
			num := (act.apply(z+h) - act.apply(z-h)) / (2 * h)
			got := act.derivFromOutput(y)
			if math.Abs(got-num) > 1e-5 {
				t.Fatalf("%v deriv at z=%v: got %v want %v", act, z, got, num)
			}
		}
	}
	// ReLU away from the kink.
	if ReLU.derivFromOutput(ReLU.apply(2)) != 1 || ReLU.derivFromOutput(ReLU.apply(-2)) != 0 {
		t.Fatal("ReLU derivative wrong")
	}
}

func TestNetworkShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := New([]int{10, 64, 32, 5}, Tanh, Identity, rng)
	if n.InDim() != 10 || n.OutDim() != 5 {
		t.Fatalf("dims %d %d", n.InDim(), n.OutDim())
	}
	if len(n.Layers) != 3 {
		t.Fatalf("layers %d", len(n.Layers))
	}
	if n.Layers[0].Act != Tanh || n.Layers[2].Act != Identity {
		t.Fatal("activation placement wrong")
	}
	out := n.Forward(make([]float64, 10))
	if len(out) != 5 {
		t.Fatalf("|out|=%d", len(out))
	}
	// 10*64+64 + 64*32+32 + 32*5+5 = 704+2080+165 = 2949
	if n.NumParams() != 2949 {
		t.Fatalf("NumParams=%d want 2949", n.NumParams())
	}
}

// TestGradCheck verifies backprop against finite differences — the single
// most load-bearing correctness test in the whole DRL stack.
func TestGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := New([]int{4, 6, 5, 3}, Tanh, Identity, rng)
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	target := []float64{0.3, -0.2, 0.8}

	loss := func() float64 {
		out := net.Forward(x)
		var l float64
		for i, o := range out {
			d := o - target[i]
			l += 0.5 * d * d
		}
		return l
	}

	// Analytic gradients.
	out := net.Forward(x)
	dOut := make([]float64, len(out))
	for i := range out {
		dOut[i] = out[i] - target[i]
	}
	net.ZeroGrads()
	dIn := net.Backward(dOut, 1)

	const h = 1e-6
	// Check weight gradients on every layer (sampled entries).
	for li, l := range net.Layers {
		for _, idx := range []int{0, len(l.W.Data) / 2, len(l.W.Data) - 1} {
			orig := l.W.Data[idx]
			l.W.Data[idx] = orig + h
			lp := loss()
			l.W.Data[idx] = orig - h
			lm := loss()
			l.W.Data[idx] = orig
			num := (lp - lm) / (2 * h)
			got := l.GradW.Data[idx]
			if math.Abs(got-num) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d W[%d]: analytic %v numeric %v", li, idx, got, num)
			}
		}
		for _, idx := range []int{0, len(l.B) - 1} {
			orig := l.B[idx]
			l.B[idx] = orig + h
			lp := loss()
			l.B[idx] = orig - h
			lm := loss()
			l.B[idx] = orig
			num := (lp - lm) / (2 * h)
			got := l.GradB[idx]
			if math.Abs(got-num) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d B[%d]: analytic %v numeric %v", li, idx, got, num)
			}
		}
	}
	// Check input gradient (needed by the DDPG actor update).
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		lp := loss()
		x[i] = orig - h
		lm := loss()
		x[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(dIn[i]-num) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("input grad [%d]: analytic %v numeric %v", i, dIn[i], num)
		}
	}
}

// TestTrainRegression checks that SGD training actually reduces loss on a
// tiny nonlinear regression problem.
func TestTrainRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := New([]int{1, 16, 1}, Tanh, Identity, rng)
	opt := NewSGD(0.05)

	sample := func() (x, y float64) {
		x = rng.Float64()*2 - 1
		return x, math.Sin(2 * x)
	}
	mse := func() float64 {
		var s float64
		for i := 0; i < 100; i++ {
			x := -1 + 2*float64(i)/99
			out := net.Forward([]float64{x})
			d := out[0] - math.Sin(2*x)
			s += d * d
		}
		return s / 100
	}

	before := mse()
	for epoch := 0; epoch < 2000; epoch++ {
		x, y := sample()
		out := net.Forward([]float64{x})
		net.ZeroGrads()
		net.Backward([]float64{out[0] - y}, 1)
		opt.Step(net)
	}
	after := mse()
	if after >= before/4 {
		t.Fatalf("training did not converge: before=%v after=%v", before, after)
	}
}

func TestAdamConvergesFasterThanLargeLossRemaining(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := New([]int{2, 8, 1}, Tanh, Identity, rng)
	opt := NewAdam(0.01)
	// Learn XOR-ish: y = x0*x1.
	for epoch := 0; epoch < 3000; epoch++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y := x[0] * x[1]
		out := net.Forward(x)
		net.ZeroGrads()
		net.Backward([]float64{out[0] - y}, 1)
		opt.Step(net)
	}
	var s float64
	n := 0
	for i := -4; i <= 4; i++ {
		for j := -4; j <= 4; j++ {
			x := []float64{float64(i) / 4, float64(j) / 4}
			out := net.Forward(x)
			d := out[0] - x[0]*x[1]
			s += d * d
			n++
		}
	}
	if s/float64(n) > 0.02 {
		t.Fatalf("Adam failed to fit product function: mse=%v", s/float64(n))
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New([]int{3, 4, 2}, Tanh, Identity, rng)
	b := a.Clone()
	x := []float64{1, 2, 3}
	oa := a.ForwardCopy(x)
	ob := b.ForwardCopy(x)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("clone differs from original")
		}
	}
	a.Layers[0].W.Data[0] += 1
	ob2 := b.ForwardCopy(x)
	for i := range ob {
		if ob[i] != ob2[i] {
			t.Fatal("mutating original changed the clone")
		}
	}
}

func TestSoftUpdateConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := New([]int{2, 3, 1}, Tanh, Identity, rng)
	dst := New([]int{2, 3, 1}, Tanh, Identity, rng)
	for i := 0; i < 2000; i++ {
		dst.SoftUpdate(src, 0.01)
	}
	for li := range src.Layers {
		for j := range src.Layers[li].W.Data {
			if math.Abs(src.Layers[li].W.Data[j]-dst.Layers[li].W.Data[j]) > 1e-6 {
				t.Fatal("soft update did not converge to source weights")
			}
		}
	}
}

// Property: SoftUpdate with τ keeps weights on the segment between old
// target and source.
func TestSoftUpdateInterpolation(t *testing.T) {
	f := func(seed int64, tauRaw uint8) bool {
		tau := float64(tauRaw%100) / 100.0
		rng := rand.New(rand.NewSource(seed))
		src := New([]int{2, 2}, Identity, Identity, rng)
		dst := New([]int{2, 2}, Identity, Identity, rng)
		before := dst.Layers[0].W.Data[0]
		s := src.Layers[0].W.Data[0]
		dst.SoftUpdate(src, tau)
		want := tau*s + (1-tau)*before
		return math.Abs(dst.Layers[0].W.Data[0]-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHardCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := New([]int{2, 3, 1}, Tanh, Identity, rng)
	b := New([]int{2, 3, 1}, Tanh, Identity, rng)
	b.HardCopy(a)
	x := []float64{0.3, -0.7}
	oa, ob := a.ForwardCopy(x), b.ForwardCopy(x)
	if oa[0] != ob[0] {
		t.Fatal("HardCopy outputs differ")
	}
}

func TestClipGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := New([]int{2, 2}, Identity, Identity, rng)
	net.Layers[0].GradW.Fill(10)
	for i := range net.Layers[0].GradB {
		net.Layers[0].GradB[i] = 10
	}
	net.ClipGrads(1)
	var sq float64
	for _, v := range net.Layers[0].GradW.Data {
		sq += v * v
	}
	for _, v := range net.Layers[0].GradB {
		sq += v * v
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-9 {
		t.Fatalf("clipped norm %v want 1", math.Sqrt(sq))
	}
	// Clipping below the bound is a no-op.
	net.ZeroGrads()
	net.Layers[0].GradW.Data[0] = 0.5
	net.ClipGrads(1)
	if net.Layers[0].GradW.Data[0] != 0.5 {
		t.Fatal("clip should not shrink small gradients")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := New([]int{4, 8, 3}, Tanh, Sigmoid, rng)
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b Network
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.2, 0.3, -0.4}
	oa, ob := a.ForwardCopy(x), b.ForwardCopy(x)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("round-trip output mismatch %v vs %v", oa, ob)
		}
	}
	if b.Layers[0].Act != Tanh || b.Layers[1].Act != Sigmoid || b.Layers[0].Out != 8 {
		t.Fatal("decoded architecture mismatch")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var n Network
	if err := n.UnmarshalBinary([]byte("not gob")); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func BenchmarkForwardActorLarge(b *testing.B) {
	// Large-scale actor: state 1010 → 64 → 32 → 1000 (CQ large, N=100 M=10).
	rng := rand.New(rand.NewSource(29))
	net := New([]int{1010, 64, 32, 1000}, Tanh, Tanh, rng)
	x := make([]float64, 1010)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkBackwardActorLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	net := New([]int{1010, 64, 32, 1000}, Tanh, Tanh, rng)
	x := make([]float64, 1010)
	dOut := make([]float64, 1000)
	net.Forward(x)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Backward(dOut, 1)
	}
}
