package nn

import (
	"math"

	"repro/internal/mat"
)

// Optimizer applies accumulated gradients to a network's weights.
// Implementations must be used with exactly one network: they keep per-layer
// moment state keyed by layer index.
type Optimizer interface {
	// Step applies the accumulated gradients of net (descending the loss)
	// and leaves the gradient buffers untouched; callers typically follow
	// with net.ZeroGrads().
	Step(net *Network)
}

// SGD is plain stochastic gradient descent with optional momentum and L2
// weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	vw []*mat.Matrix
	vb [][]float64
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step implements Optimizer.
func (o *SGD) Step(net *Network) {
	if o.vw == nil && o.Momentum != 0 {
		for _, l := range net.Layers {
			o.vw = append(o.vw, mat.NewMatrix(l.Out, l.In))
			o.vb = append(o.vb, make([]float64, l.Out))
		}
	}
	for li, l := range net.Layers {
		if o.WeightDecay != 0 {
			l.GradW.Axpy(l.W, o.WeightDecay)
		}
		if o.Momentum == 0 {
			l.W.Axpy(l.GradW, -o.LR)
			mat.AxpyVec(l.B, l.GradB, -o.LR)
			continue
		}
		vw, vb := o.vw[li], o.vb[li]
		for i, g := range l.GradW.Data {
			vw.Data[i] = o.Momentum*vw.Data[i] + g
			l.W.Data[i] -= o.LR * vw.Data[i]
		}
		for i, g := range l.GradB {
			vb[i] = o.Momentum*vb[i] + g
			l.B[i] -= o.LR * vb[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba 2015), the standard choice
// for training DDPG-style actor-critic networks.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t  int
	mw []*mat.Matrix
	vw []*mat.Matrix
	mb [][]float64
	vb [][]float64
}

// NewAdam returns an Adam optimizer with standard β₁=0.9, β₂=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(net *Network) {
	if o.mw == nil {
		for _, l := range net.Layers {
			o.mw = append(o.mw, mat.NewMatrix(l.Out, l.In))
			o.vw = append(o.vw, mat.NewMatrix(l.Out, l.In))
			o.mb = append(o.mb, make([]float64, l.Out))
			o.vb = append(o.vb, make([]float64, l.Out))
		}
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for li, l := range net.Layers {
		mw, vw := o.mw[li], o.vw[li]
		for i, g := range l.GradW.Data {
			mw.Data[i] = o.Beta1*mw.Data[i] + (1-o.Beta1)*g
			vw.Data[i] = o.Beta2*vw.Data[i] + (1-o.Beta2)*g*g
			mHat := mw.Data[i] / bc1
			vHat := vw.Data[i] / bc2
			l.W.Data[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Epsilon)
		}
		mb, vb := o.mb[li], o.vb[li]
		for i, g := range l.GradB {
			mb[i] = o.Beta1*mb[i] + (1-o.Beta1)*g
			vb[i] = o.Beta2*vb[i] + (1-o.Beta2)*g*g
			mHat := mb[i] / bc1
			vHat := vb[i] / bc2
			l.B[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Epsilon)
		}
	}
}
