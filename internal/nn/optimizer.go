package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Optimizer applies accumulated gradients to a network's weights.
// Implementations must be used with exactly one network: they keep per-layer
// moment state keyed by layer index.
type Optimizer interface {
	// Step applies the accumulated gradients of net (descending the loss)
	// and leaves the gradient buffers untouched; callers typically follow
	// with net.ZeroGrads().
	Step(net *Network)
}

// SGD is plain stochastic gradient descent with optional momentum and L2
// weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	vw []*mat.Matrix
	vb [][]float64
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step implements Optimizer.
func (o *SGD) Step(net *Network) {
	if o.vw == nil && o.Momentum != 0 {
		for _, l := range net.Layers {
			o.vw = append(o.vw, mat.NewMatrix(l.Out, l.In))
			o.vb = append(o.vb, make([]float64, l.Out))
		}
	}
	for li, l := range net.Layers {
		if o.WeightDecay != 0 {
			l.GradW.Axpy(l.W, o.WeightDecay)
		}
		if o.Momentum == 0 {
			l.W.Axpy(l.GradW, -o.LR)
			mat.AxpyVec(l.B, l.GradB, -o.LR)
			continue
		}
		vw, vb := o.vw[li], o.vb[li]
		for i, g := range l.GradW.Data {
			vw.Data[i] = o.Momentum*vw.Data[i] + g
			l.W.Data[i] -= o.LR * vw.Data[i]
		}
		for i, g := range l.GradB {
			vb[i] = o.Momentum*vb[i] + g
			l.B[i] -= o.LR * vb[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba 2015), the standard choice
// for training DDPG-style actor-critic networks.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t  int
	mw []*mat.Matrix
	vw []*mat.Matrix
	mb [][]float64
	vb [][]float64
}

// NewAdam returns an Adam optimizer with standard β₁=0.9, β₂=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// AdamState is a serializable copy of an Adam optimizer's training
// trajectory: the step counter (which drives bias correction) and the
// per-layer first/second moment estimates. A recovered optimizer that
// restarts without it takes a different trajectory from the same weights —
// fresh moments re-warm from zero and the bias correction resets — so the
// durability layer persists this alongside the network weights.
//
// A zero T with no moments is the valid "never stepped" state; restoring
// it resets the optimizer to its lazy initial condition.
type AdamState struct {
	T  int
	MW [][]float64 // first moments, per layer, row-major Out×In
	VW [][]float64 // second moments, per layer, row-major Out×In
	MB [][]float64 // bias first moments, per layer, len Out
	VB [][]float64 // bias second moments, per layer, len Out
}

// State copies the optimizer's full moment state. Before the first Step
// it returns the "never stepped" state (T=0, no moments).
func (o *Adam) State() *AdamState {
	s := &AdamState{T: o.t}
	for i := range o.mw {
		s.MW = append(s.MW, append([]float64(nil), o.mw[i].Data...))
		s.VW = append(s.VW, append([]float64(nil), o.vw[i].Data...))
		s.MB = append(s.MB, append([]float64(nil), o.mb[i]...))
		s.VB = append(s.VB, append([]float64(nil), o.vb[i]...))
	}
	return s
}

// SetState restores a previously captured moment state. net supplies the
// layer shapes the moments must match (the optimizer is bound to exactly
// one network); a shape mismatch restores nothing and errors. An empty
// state (T=0, no moments) resets the optimizer to its pre-first-Step
// condition.
func (o *Adam) SetState(s *AdamState, net *Network) error {
	if len(s.MW) == 0 && s.T == 0 {
		o.t, o.mw, o.vw, o.mb, o.vb = 0, nil, nil, nil, nil
		return nil
	}
	if len(s.MW) != len(net.Layers) || len(s.VW) != len(net.Layers) ||
		len(s.MB) != len(net.Layers) || len(s.VB) != len(net.Layers) {
		return fmt.Errorf("nn: adam state has %d/%d/%d/%d moment layers, network has %d",
			len(s.MW), len(s.VW), len(s.MB), len(s.VB), len(net.Layers))
	}
	for li, l := range net.Layers {
		if len(s.MW[li]) != len(l.W.Data) || len(s.VW[li]) != len(l.W.Data) ||
			len(s.MB[li]) != len(l.B) || len(s.VB[li]) != len(l.B) {
			return fmt.Errorf("nn: adam state layer %d shape mismatch", li)
		}
	}
	var mw, vw []*mat.Matrix
	var mb, vb [][]float64
	for li, l := range net.Layers {
		mw = append(mw, mat.FromSlice(l.Out, l.In, append([]float64(nil), s.MW[li]...)))
		vw = append(vw, mat.FromSlice(l.Out, l.In, append([]float64(nil), s.VW[li]...)))
		mb = append(mb, append([]float64(nil), s.MB[li]...))
		vb = append(vb, append([]float64(nil), s.VB[li]...))
	}
	o.t, o.mw, o.vw, o.mb, o.vb = s.T, mw, vw, mb, vb
	return nil
}

// Step implements Optimizer.
func (o *Adam) Step(net *Network) {
	if o.mw == nil {
		for _, l := range net.Layers {
			o.mw = append(o.mw, mat.NewMatrix(l.Out, l.In))
			o.vw = append(o.vw, mat.NewMatrix(l.Out, l.In))
			o.mb = append(o.mb, make([]float64, l.Out))
			o.vb = append(o.vb, make([]float64, l.Out))
		}
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for li, l := range net.Layers {
		mw, vw := o.mw[li], o.vw[li]
		for i, g := range l.GradW.Data {
			mw.Data[i] = o.Beta1*mw.Data[i] + (1-o.Beta1)*g
			vw.Data[i] = o.Beta2*vw.Data[i] + (1-o.Beta2)*g*g
			mHat := mw.Data[i] / bc1
			vHat := vw.Data[i] / bc2
			l.W.Data[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Epsilon)
		}
		mb, vb := o.mb[li], o.vb[li]
		for i, g := range l.GradB {
			mb[i] = o.Beta1*mb[i] + (1-o.Beta1)*g
			vb[i] = o.Beta2*vb[i] + (1-o.Beta2)*g*g
			mHat := mb[i] / bc1
			vHat := vb[i] / bc2
			l.B[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Epsilon)
		}
	}
}
