package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// TestForwardBatchMatchesPerSample: a batched forward over H rows must agree
// with H per-sample Forward calls to 1e-12 (the kernels share the same
// accumulation order, so they in fact agree bitwise).
func TestForwardBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := New([]int{13, 64, 32, 5}, Tanh, Identity, rng)
	const H = 9
	x := mat.NewMatrix(H, 13)
	x.Randomize(rng, 2)

	got := net.ForwardBatch(x)
	for h := 0; h < H; h++ {
		want := net.ForwardCopy(x.Row(h))
		for i, w := range want {
			if d := math.Abs(got.At(h, i) - w); d > 1e-12 {
				t.Fatalf("row %d out %d: batch=%g per-sample=%g (|Δ|=%g)", h, i, got.At(h, i), w, d)
			}
		}
	}
}

// TestBackwardBatchMatchesPerSample: gradients accumulated by one batched
// backward pass must agree with the sum of H per-sample backward passes, and
// so must the returned input gradients.
func TestBackwardBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sizes := []int{13, 64, 32, 5}
	net := New(sizes, Tanh, Identity, rng)
	ref := net.Clone()
	const H = 9

	x := mat.NewMatrix(H, 13)
	x.Randomize(rng, 2)
	dOut := mat.NewMatrix(H, 5)
	dOut.Randomize(rng, 1)
	scale := 1.0 / H

	// Reference: per-sample accumulation.
	ref.ZeroGrads()
	refDIn := mat.NewMatrix(H, 13)
	for h := 0; h < H; h++ {
		ref.Forward(x.Row(h))
		copy(refDIn.Row(h), ref.Backward(dOut.Row(h), scale))
	}

	net.ZeroGrads()
	net.ForwardBatch(x)
	dIn := net.BackwardBatch(dOut, scale)

	for h := 0; h < H; h++ {
		for i := 0; i < 13; i++ {
			if d := math.Abs(dIn.At(h, i) - refDIn.At(h, i)); d > 1e-12 {
				t.Fatalf("dIn[%d][%d]: batch=%g per-sample=%g", h, i, dIn.At(h, i), refDIn.At(h, i))
			}
		}
	}
	for li := range net.Layers {
		bl, rl := net.Layers[li], ref.Layers[li]
		for i, g := range bl.GradW.Data {
			if d := math.Abs(g - rl.GradW.Data[i]); d > 1e-12 {
				t.Fatalf("layer %d GradW[%d]: batch=%g per-sample=%g", li, i, g, rl.GradW.Data[i])
			}
		}
		for i, g := range bl.GradB {
			if d := math.Abs(g - rl.GradB[i]); d > 1e-12 {
				t.Fatalf("layer %d GradB[%d]: batch=%g per-sample=%g", li, i, g, rl.GradB[i])
			}
		}
	}
}

// TestBackwardBatchScaleZeroSkipsWeightGrads: the ∇â Q probe used by the
// actor update passes scale 0 and must leave gradient buffers untouched
// while still returning input gradients.
func TestBackwardBatchScaleZeroSkipsWeightGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := New([]int{6, 16, 2}, Tanh, Identity, rng)
	x := mat.NewMatrix(4, 6)
	x.Randomize(rng, 1)
	dOut := mat.NewMatrix(4, 2)
	dOut.Fill(1)

	net.ZeroGrads()
	net.ForwardBatch(x)
	dIn := net.BackwardBatch(dOut, 0)
	if dIn.Rows != 4 || dIn.Cols != 6 {
		t.Fatalf("dIn is %dx%d, want 4x6", dIn.Rows, dIn.Cols)
	}
	var nonzero bool
	for _, v := range dIn.Data {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("input gradient is identically zero")
	}
	for _, l := range net.Layers {
		if l.GradW.MaxAbs() != 0 {
			t.Fatal("scale 0 accumulated weight gradients")
		}
	}
}

// TestForwardBatchInterleavesWithForward: per-sample action-selection calls
// between ForwardBatch and BackwardBatch must not corrupt the batch caches.
func TestForwardBatchInterleavesWithForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := New([]int{6, 16, 2}, Tanh, Identity, rng)
	ref := net.Clone()
	x := mat.NewMatrix(4, 6)
	x.Randomize(rng, 1)
	dOut := mat.NewMatrix(4, 2)
	dOut.Randomize(rng, 1)
	probe := make([]float64, 6)
	for i := range probe {
		probe[i] = float64(i)
	}

	ref.ZeroGrads()
	ref.ForwardBatch(x)
	ref.BackwardBatch(dOut, 1)

	net.ZeroGrads()
	net.ForwardBatch(x)
	net.Forward(probe) // interleaved per-sample call
	net.BackwardBatch(dOut, 1)

	for li := range net.Layers {
		for i, g := range net.Layers[li].GradW.Data {
			if g != ref.Layers[li].GradW.Data[i] {
				t.Fatalf("layer %d GradW[%d] diverged after interleaved Forward", li, i)
			}
		}
	}
}

// TestForwardBatchVaryingSizes drives one network through shrinking and
// regrowing batch sizes — the serving batcher's access pattern — and checks
// every size still agrees with per-sample Forward and that sizes within the
// high-water mark do not reallocate the workspaces.
func TestForwardBatchVaryingSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := New([]int{11, 32, 16, 4}, Tanh, Identity, rng)

	check := func(h int) {
		t.Helper()
		x := mat.NewMatrix(h, 11)
		x.Randomize(rng, 2)
		got := net.ForwardBatch(x)
		if got.Rows != h {
			t.Fatalf("batch %d: got %d output rows", h, got.Rows)
		}
		for r := 0; r < h; r++ {
			want := net.ForwardCopy(x.Row(r))
			for i, w := range want {
				if d := math.Abs(got.At(r, i) - w); d > 1e-12 {
					t.Fatalf("batch %d row %d out %d: batch=%g per-sample=%g", h, r, i, got.At(r, i), w)
				}
			}
		}
	}
	for _, h := range []int{16, 3, 9, 1, 16, 7} {
		check(h)
	}

	// Once the high-water mark (16 rows) is allocated, smaller and equal
	// batches must reuse the same backing arrays.
	base := net.Layers[0].bIn.Data[:1]
	for _, h := range []int{5, 16, 2} {
		x := mat.NewMatrix(h, 11)
		x.Randomize(rng, 2)
		net.ForwardBatch(x)
		if &net.Layers[0].bIn.Data[0] != &base[0] {
			t.Fatalf("batch %d reallocated the workspace below the high-water mark", h)
		}
	}
}

// TestBatchKernelModeTiers pins the two-tier numerical contract of the
// batched passes at a scale that engages the blocked GEMM engine: in
// mat.KernelReference mode a batched forward/backward agrees *bitwise*
// with per-sample passes (shared accumulation order); in the default
// blocked mode it agrees to 1e-12 (the blocked engine reassociates each
// reduction). One-hot-dominated inputs exercise the sparse fast paths.
func TestBatchKernelModeTiers(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mode    mat.KernelMode
		bitwise bool
	}{
		{"reference", mat.KernelReference, true},
		{"blocked", mat.KernelBlocked, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prev := mat.SetKernelMode(tc.mode)
			defer mat.SetKernelMode(prev)
			rng := rand.New(rand.NewSource(23))
			net := New([]int{122, 64, 32, 5}, Tanh, Identity, rng)
			ref := net.Clone()
			const H = 70
			x := mat.NewMatrix(H, 122)
			for r := 0; r < H; r++ {
				row := x.Row(r)
				for k := 0; k < 20; k++ {
					row[rng.Intn(120)] = 1
				}
				row[120] = rng.Float64()
				row[121] = rng.Float64()
			}
			dOut := mat.NewMatrix(H, 5)
			dOut.Randomize(rng, 1)

			ref.ZeroGrads()
			refDIn := mat.NewMatrix(H, 122)
			for h := 0; h < H; h++ {
				ref.Forward(x.Row(h))
				copy(refDIn.Row(h), ref.Backward(dOut.Row(h), 1.0/H))
			}

			net.ZeroGrads()
			out := net.ForwardBatch(x)
			dIn := net.BackwardBatch(dOut, 1.0/H)

			check := func(what string, got, want float64) {
				t.Helper()
				if tc.bitwise && got != want {
					t.Fatalf("%s: batch=%g per-sample=%g (must be bitwise identical in reference mode)", what, got, want)
				}
				if d := math.Abs(got - want); d > 1e-12 {
					t.Fatalf("%s: batch=%g per-sample=%g (|Δ|=%g)", what, got, want, d)
				}
			}
			for h := 0; h < H; h++ {
				want := ref.ForwardCopy(x.Row(h))
				for i, w := range want {
					check("out", out.At(h, i), w)
				}
				for i := 0; i < 122; i++ {
					check("dIn", dIn.At(h, i), refDIn.At(h, i))
				}
			}
			for li := range net.Layers {
				for i, g := range net.Layers[li].GradW.Data {
					check("GradW", g, ref.Layers[li].GradW.Data[i])
				}
			}
		})
	}
}

// TestBackwardBatchGradsMatchesBackwardBatch: the grads-only backward must
// accumulate exactly the gradients of the full backward — it only skips
// the first layer's (unused) input-gradient GEMM.
func TestBackwardBatchGradsMatchesBackwardBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	net := New([]int{13, 16, 4}, Tanh, Identity, rng)
	ref := net.Clone()
	x := mat.NewMatrix(6, 13)
	x.Randomize(rng, 1)
	dOut := mat.NewMatrix(6, 4)
	dOut.Randomize(rng, 1)

	ref.ZeroGrads()
	ref.ForwardBatch(x)
	ref.BackwardBatch(dOut, 0.5)
	net.ZeroGrads()
	net.ForwardBatch(x)
	net.BackwardBatchGrads(dOut, 0.5)

	for li := range net.Layers {
		for i, g := range net.Layers[li].GradW.Data {
			if g != ref.Layers[li].GradW.Data[i] {
				t.Fatalf("layer %d GradW[%d]: grads-only %g != full %g", li, i, g, ref.Layers[li].GradW.Data[i])
			}
		}
		for i, g := range net.Layers[li].GradB {
			if g != ref.Layers[li].GradB[i] {
				t.Fatalf("layer %d GradB[%d]: grads-only %g != full %g", li, i, g, ref.Layers[li].GradB[i])
			}
		}
	}
}

// TestPoolShardsBatchedPasses: with a pool installed and a batch big
// enough to shard, results must be bitwise identical to the unpooled run
// and the pool's shard counter must advance.
func TestPoolShardsBatchedPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net := New([]int{242, 64, 32, 1}, Tanh, Identity, rng)
	ref := net.Clone()
	const H = 300
	x := mat.NewMatrix(H, 242)
	x.Randomize(rng, 1)
	dOut := mat.NewMatrix(H, 1)
	dOut.Randomize(rng, 1)

	ref.ZeroGrads()
	ref.ForwardBatch(x)
	ref.BackwardBatch(dOut, 1.0/H)

	pool := NewPool(parallel.NewSem(3))
	net.SetPool(pool)
	net.ZeroGrads()
	out := net.ForwardBatch(x)
	net.BackwardBatch(dOut, 1.0/H)

	if pool.Shards.Load() == 0 {
		t.Fatal("expected the pooled batched passes to dispatch GEMM shards")
	}
	refOut := ref.Layers[len(ref.Layers)-1].bOut
	for i := range out.Data {
		if out.Data[i] != refOut.Data[i] {
			t.Fatalf("output %d: pooled %g != unpooled %g (sharding must be bitwise invariant)", i, out.Data[i], refOut.Data[i])
		}
	}
	for li := range net.Layers {
		for i, g := range net.Layers[li].GradW.Data {
			if g != ref.Layers[li].GradW.Data[i] {
				t.Fatalf("layer %d GradW[%d]: pooled %g != unpooled %g", li, i, g, ref.Layers[li].GradW.Data[i])
			}
		}
	}
}

// TestForwardBatchInferMatchesForward: the inference-only path (transposed
// zero-skipping kernel, no backprop caches) must agree with the reference
// forward to floating-point reassociation tolerance, including on sparse
// one-hot-style inputs and across varying batch sizes.
func TestForwardBatchInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := New([]int{24, 32, 16, 6}, Tanh, Identity, rng)
	for _, h := range []int{8, 1, 5, 8} {
		x := mat.NewMatrix(h, 24)
		// One-hot-dominated rows: a few ones, a couple of dense entries.
		for r := 0; r < h; r++ {
			row := x.Row(r)
			for k := 0; k < 4; k++ {
				row[rng.Intn(20)] = 1
			}
			row[20+rng.Intn(4)] = rng.Float64()
		}
		got := net.ForwardBatchInfer(x)
		for r := 0; r < h; r++ {
			want := net.ForwardCopy(x.Row(r))
			for i, w := range want {
				if d := math.Abs(got.At(r, i) - w); d > 1e-9 {
					t.Fatalf("h=%d row %d out %d: infer=%g forward=%g (|Δ|=%g)", h, r, i, got.At(r, i), w, d)
				}
			}
		}
	}
}
