// Package nn implements the small feedforward neural networks used by the
// DRL agents: dense layers with tanh/relu/sigmoid/identity activations,
// per-sample backpropagation, SGD/momentum/Adam optimizers, gradient
// clipping, deep cloning and soft (Polyak) target-network updates, and gob
// serialization.
//
// The paper's actor and critic are 2-layer fully-connected networks with 64
// and 32 hidden neurons and tanh activation (§3.2.1); this package
// reproduces exactly that architecture while remaining general enough for
// the DQN baseline and the ablation variants.
package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// Activation identifies an element-wise activation function.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	Tanh
	ReLU
	Sigmoid
)

// String returns the conventional lowercase name of the activation.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(v float64) float64 {
	switch a {
	case Tanh:
		return math.Tanh(v)
	case ReLU:
		if v < 0 {
			return 0
		}
		return v
	case Sigmoid:
		return 1 / (1 + math.Exp(-v))
	default:
		return v
	}
}

// derivFromOutput returns dσ/dz expressed in terms of the activation output
// y = σ(z); all supported activations admit this form, which avoids caching
// pre-activations.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case Tanh:
		return 1 - y*y
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// Dense is one fully-connected layer: out = act(W·in + b).
type Dense struct {
	In, Out int
	W       *mat.Matrix // Out×In
	B       []float64   // len Out
	Act     Activation

	// Gradient accumulators (same shapes as W, B).
	GradW *mat.Matrix
	GradB []float64

	// Forward caches for backprop.
	input  []float64 // last input seen by Forward
	output []float64 // last activation output

	// Minibatch workspace (see batch.go). Kept separate from the per-sample
	// caches so action-selection Forward calls can interleave with batched
	// training without clobbering each other's backprop state.
	bIn, bOut, bDelta, bDIn *mat.Matrix

	// Inference-only caches (see forwardBatchInfer): the In×Out weight
	// transpose, built lazily from frozen weights, and its output
	// workspace. Never copied by Clone, never touched by training.
	wt   *mat.Matrix
	iOut *mat.Matrix

	// ws holds the layer's grow-only packed-tile GEMM workspace (sized by
	// ensureBatch, shared by every batched pass of this layer — all of
	// which run on one goroutine). pool, when set via Network.SetPool,
	// shards the batched GEMMs' row bands across a worker pool.
	ws   *mat.Workspace
	pool *Pool
}

// NewDense returns a dense layer with Xavier-initialized weights.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		In:    in,
		Out:   out,
		W:     mat.NewMatrix(out, in),
		B:     make([]float64, out),
		Act:   act,
		GradW: mat.NewMatrix(out, in),
		GradB: make([]float64, out),
		input: make([]float64, in),
	}
	d.W.XavierInit(rng, in, out)
	d.output = make([]float64, out)
	return d
}

// Forward computes the layer output for x, caching what backprop needs.
// The returned slice is owned by the layer and valid until the next call.
func (d *Dense) Forward(x []float64) []float64 {
	copy(d.input, x)
	d.W.MulVec(d.output, x)
	for i := range d.output {
		d.output[i] = d.Act.apply(d.output[i] + d.B[i])
	}
	return d.output
}

// Backward takes dL/d(output), accumulates dL/dW and dL/db into the
// gradient buffers, and returns dL/d(input). scale multiplies the
// accumulated gradients (use 1/batchSize for mean losses). The returned
// slice is owned by the caller via dst; if dst is nil a fresh slice is
// allocated.
func (d *Dense) Backward(dst, dOut []float64, scale float64) []float64 {
	if len(dOut) != d.Out {
		panic(fmt.Sprintf("nn: Backward got |dOut|=%d want %d", len(dOut), d.Out))
	}
	if dst == nil {
		dst = make([]float64, d.In)
	}
	// delta = dL/dz = dL/dy ⊙ σ'(z), with σ' expressed via the output.
	delta := make([]float64, d.Out)
	for i, g := range dOut {
		delta[i] = g * d.Act.derivFromOutput(d.output[i])
	}
	d.GradW.AddOuterScaled(delta, d.input, scale)
	mat.AxpyVec(d.GradB, delta, scale)
	d.W.MulVecT(dst, delta)
	return dst
}

// ZeroGrads clears the accumulated gradients.
func (d *Dense) ZeroGrads() {
	d.GradW.Zero()
	for i := range d.GradB {
		d.GradB[i] = 0
	}
}

// Network is a stack of dense layers evaluated in order.
type Network struct {
	Layers []*Dense
}

// New builds a network from layer sizes. sizes[0] is the input dimension;
// each subsequent entry adds a dense layer. All hidden layers use hiddenAct
// and the final layer uses outAct. For the paper's actor/critic call, e.g.:
//
//	New([]int{stateDim, 64, 32, actionDim}, nn.Tanh, nn.Tanh, rng)
func New(sizes []int, hiddenAct, outAct Activation, rng *rand.Rand) *Network {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	n := &Network{}
	for i := 0; i < len(sizes)-1; i++ {
		act := hiddenAct
		if i == len(sizes)-2 {
			act = outAct
		}
		n.Layers = append(n.Layers, NewDense(sizes[i], sizes[i+1], act, rng))
	}
	return n
}

// InDim returns the network input dimension.
func (n *Network) InDim() int { return n.Layers[0].In }

// OutDim returns the network output dimension.
func (n *Network) OutDim() int { return n.Layers[len(n.Layers)-1].Out }

// Forward evaluates the network on x. The returned slice is owned by the
// final layer and valid until the next Forward call; copy it if retained.
func (n *Network) Forward(x []float64) []float64 {
	h := x
	for _, l := range n.Layers {
		h = l.Forward(h)
	}
	return h
}

// ForwardCopy evaluates the network and returns a caller-owned copy.
func (n *Network) ForwardCopy(x []float64) []float64 {
	out := n.Forward(x)
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// Backward backpropagates dL/d(output) through the whole stack (which must
// have just run Forward on the sample of interest), accumulating gradients
// scaled by scale, and returns dL/d(input).
func (n *Network) Backward(dOut []float64, scale float64) []float64 {
	g := dOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(nil, g, scale)
	}
	return g
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, l := range n.Layers {
		l.ZeroGrads()
	}
}

// ClipGrads rescales all gradients so the global L2 norm is at most c.
func (n *Network) ClipGrads(c float64) {
	var sq float64
	for _, l := range n.Layers {
		for _, v := range l.GradW.Data {
			sq += v * v
		}
		for _, v := range l.GradB {
			sq += v * v
		}
	}
	norm := math.Sqrt(sq)
	if norm <= c || norm == 0 {
		return
	}
	s := c / norm
	for _, l := range n.Layers {
		l.GradW.Scale(s)
		mat.ScaleVec(l.GradB, s)
	}
}

// Clone returns a deep copy of the network (weights only; gradient buffers
// are fresh). Used to create target networks.
func (n *Network) Clone() *Network {
	c := &Network{}
	for _, l := range n.Layers {
		nl := &Dense{
			In:     l.In,
			Out:    l.Out,
			W:      l.W.Clone(),
			B:      append([]float64(nil), l.B...),
			Act:    l.Act,
			GradW:  mat.NewMatrix(l.Out, l.In),
			GradB:  make([]float64, l.Out),
			input:  make([]float64, l.In),
			output: make([]float64, l.Out),
		}
		c.Layers = append(c.Layers, nl)
	}
	return c
}

// SoftUpdate moves this network's weights toward src:
// θ(this) := τ·θ(src) + (1−τ)·θ(this). This matches Algorithm 1 line 18
// where the *target* network is slowly tracked with τ = 0.01.
func (n *Network) SoftUpdate(src *Network, tau float64) {
	if len(n.Layers) != len(src.Layers) {
		panic("nn: SoftUpdate layer count mismatch")
	}
	for i, l := range n.Layers {
		s := src.Layers[i]
		for j := range l.W.Data {
			l.W.Data[j] = tau*s.W.Data[j] + (1-tau)*l.W.Data[j]
		}
		for j := range l.B {
			l.B[j] = tau*s.B[j] + (1-tau)*l.B[j]
		}
	}
}

// HardCopy copies src's weights into this network (τ = 1 update).
func (n *Network) HardCopy(src *Network) {
	if len(n.Layers) != len(src.Layers) {
		panic("nn: HardCopy layer count mismatch")
	}
	for i, l := range n.Layers {
		l.W.CopyFrom(src.Layers[i].W)
		copy(l.B, src.Layers[i].B)
	}
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W.Data) + len(l.B)
	}
	return total
}

// netState is the gob wire format for Network.
type netState struct {
	Sizes []int
	Acts  []Activation
	W     [][]float64
	B     [][]float64
}

// MarshalBinary encodes the network weights with encoding/gob.
func (n *Network) MarshalBinary() ([]byte, error) {
	st := netState{Sizes: []int{n.InDim()}}
	for _, l := range n.Layers {
		st.Sizes = append(st.Sizes, l.Out)
		st.Acts = append(st.Acts, l.Act)
		st.W = append(st.W, append([]float64(nil), l.W.Data...))
		st.B = append(st.B, append([]float64(nil), l.B...))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("nn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a network previously encoded by MarshalBinary,
// replacing this network's layers.
func (n *Network) UnmarshalBinary(data []byte) error {
	var st netState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode: %w", err)
	}
	if len(st.Sizes) < 2 || len(st.Acts) != len(st.Sizes)-1 ||
		len(st.W) != len(st.Sizes)-1 || len(st.B) != len(st.Sizes)-1 {
		return fmt.Errorf("nn: decode: malformed state (%d sizes, %d acts, %d weight sets, %d bias sets)",
			len(st.Sizes), len(st.Acts), len(st.W), len(st.B))
	}
	n.Layers = nil
	for i := 0; i < len(st.Sizes)-1; i++ {
		in, out := st.Sizes[i], st.Sizes[i+1]
		if len(st.W[i]) != in*out || len(st.B[i]) != out {
			return fmt.Errorf("nn: decode: layer %d shape mismatch", i)
		}
		l := &Dense{
			In:     in,
			Out:    out,
			W:      mat.FromSlice(out, in, st.W[i]),
			B:      st.B[i],
			Act:    st.Acts[i],
			GradW:  mat.NewMatrix(out, in),
			GradB:  make([]float64, out),
			input:  make([]float64, in),
			output: make([]float64, out),
		}
		n.Layers = append(n.Layers, l)
	}
	return nil
}
