package nn

import (
	"fmt"

	"repro/internal/mat"
)

// Minibatch passes. A batch of H samples is a row-major H×dim matrix; one
// ForwardBatch/BackwardBatch pair replaces H per-sample Forward/Backward
// calls with three GEMMs per layer (Y = X·Wᵀ, GradW += Δᵀ·X, dX = Δ·W).
// The GEMMs run on mat's blocked multi-core engine by default — sparse
// one-hot-dominated batches hit its zero-skipping fast paths, and a pool
// installed via Network.SetPool shards the row bands across workers
// (bitwise invariant to worker count). In mat.KernelReference mode the
// kernels accumulate in the same order as the per-sample GEMV kernels, so
// batched and per-sample passes agree bitwise; in the default blocked
// mode they agree to ~1e-12 (see internal/mat/gemm.go).
//
// All intermediates live in per-layer workspaces that are allocated on
// first use and reused while the batch size stays constant (the training
// loops use a fixed H), so steady-state batched training does not allocate.

// ensureBatch sizes the layer's minibatch workspace for h rows. The
// backing arrays — including the blocked GEMM engine's packed-tile
// workspace — grow monotonically (mat.Reshape / mat.Workspace), so a
// serving path whose micro-batch size fluctuates request-to-request (see
// internal/serve) reuses one high-water-mark allocation instead of
// reallocating every time the batch size changes.
func (d *Dense) ensureBatch(h int) {
	if d.bIn == nil {
		d.bIn, d.bOut, d.bDelta, d.bDIn = &mat.Matrix{}, &mat.Matrix{}, &mat.Matrix{}, &mat.Matrix{}
		d.ws = &mat.Workspace{}
	}
	d.bIn.Reshape(h, d.In)
	d.bOut.Reshape(h, d.Out)
	d.bDelta.Reshape(h, d.Out)
	d.bDIn.Reshape(h, d.In)
}

// ForwardBatch computes the layer output for every row of x, caching what
// BackwardBatch needs. The returned matrix is owned by the layer and valid
// until the next ForwardBatch call.
func (d *Dense) ForwardBatch(x *mat.Matrix) *mat.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: ForwardBatch got %d columns, layer input is %d", x.Cols, d.In))
	}
	d.ensureBatch(x.Rows)
	d.bIn.CopyFrom(x)
	d.pool.add(mat.MatmulNTP(d.bOut, x, d.W, d.ws, d.pool.sem()))
	for r := 0; r < d.bOut.Rows; r++ {
		row := d.bOut.Row(r)
		for i := range row {
			row[i] = d.Act.apply(row[i] + d.B[i])
		}
	}
	return d.bOut
}

// BackwardBatch takes dL/d(output) for the whole batch, accumulates dL/dW
// and dL/db scaled by scale (pass 0 to skip weight gradients when only the
// input gradient is wanted), and returns dL/d(input). The returned matrix
// is owned by the layer and valid until the next BackwardBatch call.
func (d *Dense) BackwardBatch(dOut *mat.Matrix, scale float64) *mat.Matrix {
	return d.backwardBatch(dOut, scale, true)
}

// backwardBatch is BackwardBatch with the input-gradient GEMM optional:
// the first layer of a pure weight-update pass never needs dL/d(input)
// (nothing sits below the network input), and that dX = Δ·W product is a
// dense GEMM as large as the layer's forward pass.
func (d *Dense) backwardBatch(dOut *mat.Matrix, scale float64, needDIn bool) *mat.Matrix {
	if d.bOut == nil || dOut.Rows != d.bOut.Rows || dOut.Cols != d.Out {
		panic(fmt.Sprintf("nn: BackwardBatch got %dx%d, want %dx%d matching the last ForwardBatch",
			dOut.Rows, dOut.Cols, d.bOut.Rows, d.Out))
	}
	for r := 0; r < dOut.Rows; r++ {
		src := dOut.Row(r)
		out := d.bOut.Row(r)
		dst := d.bDelta.Row(r)
		for i, g := range src {
			dst[i] = g * d.Act.derivFromOutput(out[i])
		}
	}
	if scale != 0 {
		d.pool.add(d.GradW.AddMatmulTNScaledP(d.bDelta, d.bIn, scale, d.ws, d.pool.sem()))
		mat.AddColSumScaled(d.GradB, d.bDelta, scale)
	}
	if !needDIn {
		return nil
	}
	d.pool.add(mat.MatmulP(d.bDIn, d.bDelta, d.W, d.ws, d.pool.sem()))
	return d.bDIn
}

// ForwardBatchInfer is the inference-only batched pass used by the serving
// path (internal/serve): no backprop caches are written, and each layer
// computes Y = X·Wᵀ through the zero-skipping axpy GEMM (mat.Matmul) over
// a lazily cached In×Out transpose of its weights. For the serving
// workload the input rows are one-hot dominated (flattened assignment
// matrices), so skipping zero coefficients drops most of the layer-1
// multiply-accumulates — the layer that dominates inference cost.
//
// The transpose cache is built on first use and never invalidated, so the
// network's weights must be frozen before the first call (serving installs
// trained weights once); training paths must keep using ForwardBatch.
// Summation order differs from Forward/ForwardBatch (single accumulator
// per output instead of the 4-lane dot), so outputs may differ in the last
// bits — irrelevant for action selection, which is why only the inference
// path uses it.
func (d *Dense) forwardBatchInfer(x *mat.Matrix) *mat.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: forwardBatchInfer got %d columns, layer input is %d", x.Cols, d.In))
	}
	if d.wt == nil {
		d.wt = mat.NewMatrix(d.In, d.Out)
		for i := 0; i < d.Out; i++ {
			row := d.W.Row(i)
			for j, v := range row {
				d.wt.Data[j*d.Out+i] = v
			}
		}
	}
	if d.iOut == nil {
		d.iOut = &mat.Matrix{}
	}
	if d.ws == nil {
		d.ws = &mat.Workspace{}
	}
	h := x.Rows
	d.iOut.Reshape(h, d.Out)
	d.pool.add(mat.MatmulP(d.iOut, x, d.wt, d.ws, d.pool.sem()))
	for r := 0; r < h; r++ {
		row := d.iOut.Row(r)
		for i := range row {
			row[i] = d.Act.apply(row[i] + d.B[i])
		}
	}
	return d.iOut
}

// ForwardBatchInfer evaluates the network on every row of x through the
// inference-only path (see Dense.forwardBatchInfer for the contract). The
// returned matrix is owned by the final layer and valid until its next
// ForwardBatchInfer call.
func (n *Network) ForwardBatchInfer(x *mat.Matrix) *mat.Matrix {
	h := x
	for _, l := range n.Layers {
		h = l.forwardBatchInfer(h)
	}
	return h
}

// ForwardBatch evaluates the network on every row of x. The returned matrix
// is owned by the final layer and valid until its next ForwardBatch call.
func (n *Network) ForwardBatch(x *mat.Matrix) *mat.Matrix {
	h := x
	for _, l := range n.Layers {
		h = l.ForwardBatch(h)
	}
	return h
}

// BackwardBatch backpropagates per-row dL/d(output) through the whole stack
// (which must have just run ForwardBatch on the batch of interest),
// accumulating gradients scaled by scale, and returns dL/d(input) per row.
func (n *Network) BackwardBatch(dOut *mat.Matrix, scale float64) *mat.Matrix {
	g := dOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].BackwardBatch(g, scale)
	}
	return g
}

// BackwardBatchGrads is BackwardBatch for weight updates only: it skips
// the first layer's input-gradient GEMM (dL/dx of the network input,
// which no optimizer consumes — only probes like the actor update's ∇â Q
// need it, and they keep using BackwardBatch). The accumulated gradients
// are identical to BackwardBatch's.
func (n *Network) BackwardBatchGrads(dOut *mat.Matrix, scale float64) {
	g := dOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].backwardBatch(g, scale, i > 0)
	}
}
