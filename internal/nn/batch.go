package nn

import (
	"fmt"

	"repro/internal/mat"
)

// Minibatch passes. A batch of H samples is a row-major H×dim matrix; one
// ForwardBatch/BackwardBatch pair replaces H per-sample Forward/Backward
// calls with three GEMMs per layer (Y = X·Wᵀ, GradW += Δᵀ·X, dX = Δ·W).
// The GEMM kernels accumulate in the same order as the per-sample GEMV
// kernels, so batched and per-sample passes agree bitwise.
//
// All intermediates live in per-layer workspaces that are allocated on
// first use and reused while the batch size stays constant (the training
// loops use a fixed H), so steady-state batched training does not allocate.

// ensureBatch sizes the layer's minibatch workspace for h rows.
func (d *Dense) ensureBatch(h int) {
	if d.bIn != nil && d.bIn.Rows == h {
		return
	}
	d.bIn = mat.NewMatrix(h, d.In)
	d.bOut = mat.NewMatrix(h, d.Out)
	d.bDelta = mat.NewMatrix(h, d.Out)
	d.bDIn = mat.NewMatrix(h, d.In)
}

// ForwardBatch computes the layer output for every row of x, caching what
// BackwardBatch needs. The returned matrix is owned by the layer and valid
// until the next ForwardBatch call.
func (d *Dense) ForwardBatch(x *mat.Matrix) *mat.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: ForwardBatch got %d columns, layer input is %d", x.Cols, d.In))
	}
	d.ensureBatch(x.Rows)
	d.bIn.CopyFrom(x)
	mat.MatmulNT(d.bOut, x, d.W)
	for r := 0; r < d.bOut.Rows; r++ {
		row := d.bOut.Row(r)
		for i := range row {
			row[i] = d.Act.apply(row[i] + d.B[i])
		}
	}
	return d.bOut
}

// BackwardBatch takes dL/d(output) for the whole batch, accumulates dL/dW
// and dL/db scaled by scale (pass 0 to skip weight gradients when only the
// input gradient is wanted), and returns dL/d(input). The returned matrix
// is owned by the layer and valid until the next BackwardBatch call.
func (d *Dense) BackwardBatch(dOut *mat.Matrix, scale float64) *mat.Matrix {
	if d.bOut == nil || dOut.Rows != d.bOut.Rows || dOut.Cols != d.Out {
		panic(fmt.Sprintf("nn: BackwardBatch got %dx%d, want %dx%d matching the last ForwardBatch",
			dOut.Rows, dOut.Cols, d.bOut.Rows, d.Out))
	}
	for r := 0; r < dOut.Rows; r++ {
		src := dOut.Row(r)
		out := d.bOut.Row(r)
		dst := d.bDelta.Row(r)
		for i, g := range src {
			dst[i] = g * d.Act.derivFromOutput(out[i])
		}
	}
	if scale != 0 {
		d.GradW.AddMatmulTNScaled(d.bDelta, d.bIn, scale)
		mat.AddColSumScaled(d.GradB, d.bDelta, scale)
	}
	mat.Matmul(d.bDIn, d.bDelta, d.W)
	return d.bDIn
}

// ForwardBatch evaluates the network on every row of x. The returned matrix
// is owned by the final layer and valid until its next ForwardBatch call.
func (n *Network) ForwardBatch(x *mat.Matrix) *mat.Matrix {
	h := x
	for _, l := range n.Layers {
		h = l.ForwardBatch(h)
	}
	return h
}

// BackwardBatch backpropagates per-row dL/d(output) through the whole stack
// (which must have just run ForwardBatch on the batch of interest),
// accumulating gradients scaled by scale, and returns dL/d(input) per row.
func (n *Network) BackwardBatch(dOut *mat.Matrix, scale float64) *mat.Matrix {
	g := dOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].BackwardBatch(g, scale)
	}
	return g
}
