package nn

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestSnapshotRestoreRoundTrip: a snapshot restored into a clone reproduces
// the source network bitwise (checksums and forward outputs agree).
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := New([]int{5, 8, 3}, Tanh, Identity, rng)
	dst := New([]int{5, 8, 3}, Tanh, Identity, rand.New(rand.NewSource(2)))
	if src.Checksum() == dst.Checksum() {
		t.Fatal("differently seeded networks should not collide")
	}
	var snap Snapshot
	src.Snapshot(&snap)
	if err := dst.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	if src.Checksum() != dst.Checksum() {
		t.Fatal("restore did not reproduce the source weights")
	}
	x := []float64{0.1, -0.4, 0.9, 0, 0.3}
	a, b := src.ForwardCopy(x), dst.ForwardCopy(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("forward mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSnapshotReuseNoRealloc: repeated snapshots of a same-shaped network
// reuse the snapshot's backing storage.
func TestSnapshotReuseNoRealloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := New([]int{4, 6, 2}, Tanh, Tanh, rng)
	var snap Snapshot
	net.Snapshot(&snap)
	w0 := &snap.W[0][0]
	net.Layers[0].W.Data[0] = 42
	net.Snapshot(&snap)
	if &snap.W[0][0] != w0 {
		t.Fatal("snapshot reallocated its backing storage")
	}
	if snap.W[0][0] != 42 {
		t.Fatal("snapshot did not refresh the weights")
	}
}

// TestRestoreShapeMismatch: restoring across shapes is an error, not a
// corruption.
func TestRestoreShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New([]int{4, 6, 2}, Tanh, Tanh, rng)
	b := New([]int{4, 5, 2}, Tanh, Tanh, rng)
	var snap Snapshot
	a.Snapshot(&snap)
	if err := b.Restore(&snap); err == nil {
		t.Fatal("restore across shapes succeeded")
	}
}

// TestRestoreRefreshesInferCache: a network that has already served through
// ForwardBatchInfer (and therefore built its weight-transpose cache) must
// serve the *new* weights after Restore, not the cached ones.
func TestRestoreRefreshesInferCache(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := New([]int{3, 4, 2}, Tanh, Identity, rng)
	x := mat.FromSlice(1, 3, []float64{0.2, -0.1, 0.7})

	// Build the infer cache with the old weights.
	net.ForwardBatchInfer(x)

	donor := New([]int{3, 4, 2}, Tanh, Identity, rand.New(rand.NewSource(6)))
	var snap Snapshot
	donor.Snapshot(&snap)
	if err := net.Restore(&snap); err != nil {
		t.Fatal(err)
	}

	got := net.ForwardBatchInfer(x)
	want := donor.ForwardBatchInfer(x)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("stale infer cache after restore: got %v want %v", got.Data, want.Data)
		}
	}
}

// TestChecksumSensitivity: flipping one weight changes the checksum.
func TestChecksumSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := New([]int{4, 6, 2}, Tanh, Tanh, rng)
	before := net.Checksum()
	net.Layers[1].B[0] += 1e-12
	if net.Checksum() == before {
		t.Fatal("checksum ignored a bias change")
	}
}
