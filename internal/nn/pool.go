package nn

import (
	"sync/atomic"

	"repro/internal/parallel"
)

// Pool connects a network's batched passes to a shared worker pool: when
// set (Network.SetPool), the per-layer GEMMs shard fixed row bands of
// their outputs across the semaphore (mat.MatmulP and friends), which is
// bitwise invariant to the pool's capacity. Shards counts the shard tasks
// dispatched — the observability hook behind the serving daemon's
// serve_gemm_shards_total metric — and may be read concurrently.
//
// A nil *Pool (the default) runs every GEMM on the calling goroutine.
type Pool struct {
	Sem    *parallel.Sem
	Shards atomic.Uint64
}

// NewPool wraps a shared semaphore for use by networks.
func NewPool(sem *parallel.Sem) *Pool { return &Pool{Sem: sem} }

func (p *Pool) sem() *parallel.Sem {
	if p == nil {
		return nil
	}
	return p.Sem
}

func (p *Pool) add(shards int) {
	if p == nil || shards == 0 {
		return
	}
	p.Shards.Add(uint64(shards))
}

// SetPool installs the worker pool on every layer of the network (nil
// restores single-goroutine execution). The pool only decides where GEMM
// row bands execute, never what they compute, so training and inference
// results are bitwise identical for every pool capacity.
func (n *Network) SetPool(p *Pool) {
	for _, l := range n.Layers {
		l.pool = p
	}
}
