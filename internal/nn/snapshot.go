package nn

import (
	"fmt"
	"math"
)

// Weight snapshot/restore: the serving daemon's online trainer updates its
// own copy of the networks and periodically publishes the weights into a
// spare inference network, which the batch loop then swaps in atomically
// (see internal/serve). Snapshot and Restore are the copy half of that
// double-buffering: Snapshot captures weights without touching inference
// state, and Restore installs them into a network whose inference-only
// caches (the weight transpose of forwardBatchInfer) are refreshed in
// place, so a restored network serves the new weights immediately instead
// of from a stale cache.

// Snapshot is a flat copy of a network's trainable parameters. The backing
// slices are reused across Snapshot calls on same-shaped networks, so a
// steady-state publish cycle does not allocate.
type Snapshot struct {
	W [][]float64 // per layer, row-major Out×In
	B [][]float64 // per layer, len Out
}

// Snapshot copies the network's weights into dst (allocated or grown as
// needed) and returns it. A nil dst allocates a fresh snapshot.
func (n *Network) Snapshot(dst *Snapshot) *Snapshot {
	if dst == nil {
		dst = &Snapshot{}
	}
	if cap(dst.W) < len(n.Layers) {
		dst.W = make([][]float64, len(n.Layers))
		dst.B = make([][]float64, len(n.Layers))
	}
	dst.W = dst.W[:len(n.Layers)]
	dst.B = dst.B[:len(n.Layers)]
	for i, l := range n.Layers {
		if cap(dst.W[i]) < len(l.W.Data) {
			dst.W[i] = make([]float64, len(l.W.Data))
		}
		dst.W[i] = dst.W[i][:len(l.W.Data)]
		copy(dst.W[i], l.W.Data)
		if cap(dst.B[i]) < len(l.B) {
			dst.B[i] = make([]float64, len(l.B))
		}
		dst.B[i] = dst.B[i][:len(l.B)]
		copy(dst.B[i], l.B)
	}
	return dst
}

// Restore installs a snapshot taken from a same-shaped network and
// refreshes any inference-only caches so subsequent ForwardBatchInfer
// calls serve the restored weights. The network must not be evaluated
// concurrently with Restore; the serving daemon guarantees that by only
// restoring into buffers the batch loop has not yet been handed.
func (n *Network) Restore(s *Snapshot) error {
	if len(s.W) != len(n.Layers) || len(s.B) != len(n.Layers) {
		return fmt.Errorf("nn: restore snapshot has %d/%d layers, network has %d",
			len(s.W), len(s.B), len(n.Layers))
	}
	for i, l := range n.Layers {
		if len(s.W[i]) != len(l.W.Data) || len(s.B[i]) != len(l.B) {
			return fmt.Errorf("nn: restore layer %d shape mismatch", i)
		}
	}
	for i, l := range n.Layers {
		copy(l.W.Data, s.W[i])
		copy(l.B, s.B[i])
		l.refreshInferCache()
	}
	return nil
}

// refreshInferCache rebuilds the lazily built weight transpose of
// forwardBatchInfer in place, if it exists; the next inference pass then
// sees the current weights without reallocating.
func (d *Dense) refreshInferCache() {
	if d.wt == nil {
		return
	}
	for i := 0; i < d.Out; i++ {
		row := d.W.Row(i)
		for j, v := range row {
			d.wt.Data[j*d.Out+i] = v
		}
	}
}

// Checksum returns an FNV-1a hash over the exact bit patterns of every
// weight and bias, in layer order. Two networks with bitwise-identical
// parameters hash identically, which is what the deterministic end-to-end
// harness asserts across repeated online-learning runs.
func (n *Network) Checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v float64) {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime64
		}
	}
	for _, l := range n.Layers {
		for _, v := range l.W.Data {
			mix(v)
		}
		for _, v := range l.B {
			mix(v)
		}
	}
	return h
}
