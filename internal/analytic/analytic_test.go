package analytic

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func chain(t testing.TB) *topology.Topology {
	t.Helper()
	top, err := topology.NewBuilder("chain").
		AddSpout("spout", 2, 0.05, 1, 120).
		AddBolt("work", 4, 0.4, 1, 80).
		AddBolt("sink", 2, 0.1, 0, 0).
		Connect("spout", "work", topology.Shuffle).
		Connect("work", "sink", topology.Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func newEval(t testing.TB, top *topology.Topology, m int, rate float64) *Evaluator {
	t.Helper()
	arr := map[string]workload.ArrivalProcess{}
	for _, sp := range top.Spouts() {
		arr[sp.Name] = workload.ConstantRate{PerSecond: rate}
	}
	ev, err := New(top, cluster.NewUniform(m), arr)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestNewValidation(t *testing.T) {
	top := chain(t)
	if _, err := New(top, cluster.NewUniform(2), map[string]workload.ArrivalProcess{}); err == nil {
		t.Fatal("missing arrivals should fail")
	}
	if _, err := New(top, &cluster.Cluster{}, nil); err == nil {
		t.Fatal("empty cluster should fail")
	}
}

func TestBasicProperties(t *testing.T) {
	top := chain(t)
	ev := newEval(t, top, 3, 150)
	if ev.N() != 8 || ev.M() != 3 {
		t.Fatalf("N=%d M=%d", ev.N(), ev.M())
	}
	w := ev.Workload()
	if len(w) != 1 || w[0] != 150 {
		t.Fatalf("workload %v", w)
	}
	assign := []int{0, 1, 2, 0, 1, 2, 0, 1}
	l := ev.AvgTupleTimeMS(assign)
	if l <= 0 || l > 100 {
		t.Fatalf("implausible latency %v", l)
	}
	// Deterministic.
	if ev.AvgTupleTimeMS(assign) != l {
		t.Fatal("evaluator not deterministic")
	}
}

func TestColocationBeatsScatterAnalytic(t *testing.T) {
	top, err := topology.NewBuilder("pair").
		AddSpout("s", 1, 0.02, 1, 400).
		AddBolt("a", 1, 0.1, 1, 400).
		AddBolt("b", 1, 0.1, 0, 0).
		Connect("s", "a", topology.Shuffle).
		Connect("a", "b", topology.Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := newEval(t, top, 3, 100)
	if co, sc := ev.AvgTupleTimeMS([]int{0, 0, 0}), ev.AvgTupleTimeMS([]int{0, 1, 2}); co >= sc {
		t.Fatalf("colocated %v should beat scattered %v", co, sc)
	}
}

func TestOverloadPenalized(t *testing.T) {
	top, err := topology.NewBuilder("hot").
		AddSpout("s", 2, 0.02, 1, 100).
		AddBolt("heavy", 8, 2.0, 0, 0).
		Connect("s", "heavy", topology.Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := newEval(t, top, 4, 1800)
	packed := ev.AvgTupleTimeMS([]int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	spread := ev.AvgTupleTimeMS([]int{0, 1, 0, 1, 2, 3, 0, 1, 2, 3})
	if spread >= packed {
		t.Fatalf("spread %v should beat packed %v under overload", spread, packed)
	}
}

func TestHigherRateRaisesLatency(t *testing.T) {
	top := chain(t)
	assign := []int{0, 1, 2, 0, 1, 2, 0, 1}
	lo := newEval(t, top, 3, 100).AvgTupleTimeMS(assign)
	hi := newEval(t, top, 3, 900).AvgTupleTimeMS(assign)
	if hi <= lo {
		t.Fatalf("latency should grow with load: %v -> %v", lo, hi)
	}
}

func TestStepWorkloadSampledAtTime(t *testing.T) {
	top := chain(t)
	arr := map[string]workload.ArrivalProcess{
		"spout": workload.StepRate{Base: 100, Factor: 1.5, AtMS: 1000},
	}
	ev, err := New(top, cluster.NewUniform(3), arr)
	if err != nil {
		t.Fatal(err)
	}
	assign := []int{0, 1, 2, 0, 1, 2, 0, 1}
	before := ev.AvgTupleTimeMS(assign)
	ev.TimeMS = 2000
	after := ev.AvgTupleTimeMS(assign)
	if after <= before {
		t.Fatalf("stepped workload should raise latency: %v -> %v", before, after)
	}
	if ev.Workload()[0] != 150 {
		t.Fatal("Workload should sample at TimeMS")
	}
}

func TestZeroRate(t *testing.T) {
	top := chain(t)
	ev := newEval(t, top, 3, 0)
	if got := ev.AvgTupleTimeMS([]int{0, 1, 2, 0, 1, 2, 0, 1}); got != 0 {
		t.Fatalf("zero workload should give 0 latency, got %v", got)
	}
}

func TestGroupingRates(t *testing.T) {
	// Global grouping concentrates load on task 0 — latency should exceed
	// the shuffle equivalent under pressure.
	build := func(g topology.Grouping) *topology.Topology {
		top, err := topology.NewBuilder("g").
			AddSpout("s", 2, 0.02, 1, 100).
			AddBolt("b", 4, 1.0, 0, 0).
			Connect("s", "b", g).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		return top
	}
	assign := []int{0, 1, 0, 1, 2, 3}
	shuffle := newEval(t, build(topology.Shuffle), 4, 800).AvgTupleTimeMS(assign)
	global := newEval(t, build(topology.Global), 4, 800).AvgTupleTimeMS(assign)
	if global <= shuffle {
		t.Fatalf("global grouping should congest task 0: shuffle %v global %v", shuffle, global)
	}
}

// spearman computes the Spearman rank correlation between two slices.
func spearman(a, b []float64) float64 {
	rank := func(v []float64) []float64 {
		idx := make([]int, len(v))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return v[idx[x]] < v[idx[y]] })
		r := make([]float64, len(v))
		for pos, i := range idx {
			r[i] = float64(pos)
		}
		return r
	}
	ra, rb := rank(a), rank(b)
	n := float64(len(a))
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

// TestRankAgreementWithSimulator is the transfer-validity test: schedules
// the analytic evaluator prefers must also be preferred by the DES, or
// training on the analytic environment would not transfer (DESIGN.md §5.1).
func TestRankAgreementWithSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("DES comparison is slow")
	}
	top, err := topology.NewBuilder("cq").
		AddSpout("spout", 2, 0.05, 1, 150).
		AddBolt("query", 5, 0.8, 0.3, 200).
		AddBolt("file", 3, 0.3, 0, 0).
		Connect("spout", "query", topology.Shuffle).
		Connect("query", "file", topology.Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.NewUniform(4)
	arr := map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: 600}}
	ev, err := New(top, cl, arr)
	if err != nil {
		t.Fatal(err)
	}
	senv := &sim.Env{Top: top, Cl: cl, Arrivals: arr, Seed: 1, HorizonMS: 40_000}

	rng := rand.New(rand.NewSource(99))
	var av, sv []float64
	for trial := 0; trial < 12; trial++ {
		assign := make([]int, top.NumExecutors())
		for i := range assign {
			assign[i] = rng.Intn(4)
		}
		av = append(av, ev.AvgTupleTimeMS(assign))
		sv = append(sv, senv.AvgTupleTimeMS(assign))
	}
	rho := spearman(av, sv)
	if rho < 0.5 {
		t.Fatalf("analytic/DES rank correlation too weak: ρ=%.2f\nanalytic=%v\nsim=%v", rho, av, sv)
	}
}

func BenchmarkEvaluateLarge(b *testing.B) {
	top, err := topology.NewBuilder("cq-large").
		AddSpout("spout", 10, 0.05, 1, 150).
		AddBolt("query", 45, 0.8, 0.3, 200).
		AddBolt("file", 45, 0.3, 0, 0).
		Connect("spout", "query", topology.Shuffle).
		Connect("query", "file", topology.Shuffle).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	arr := map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: 1000}}
	ev, err := New(top, cluster.NewUniform(10), arr)
	if err != nil {
		b.Fatal(err)
	}
	assign := make([]int, 100)
	for i := range assign {
		assign[i] = i % 10
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.AvgTupleTimeMS(assign)
	}
}

func TestHeterogeneousSpeedMatters(t *testing.T) {
	// A half-speed machine should make schedules that lean on it worse.
	top := chain(t)
	cl := cluster.NewUniform(3)
	cl.Machines[2].SpeedFactor = 0.25
	arr := map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: 600}}
	ev, err := New(top, cl, arr)
	if err != nil {
		t.Fatal(err)
	}
	onFast := []int{0, 1, 0, 1, 0, 1, 0, 1}
	onSlow := []int{2, 2, 2, 2, 2, 2, 0, 1}
	if fast, slow := ev.AvgTupleTimeMS(onFast), ev.AvgTupleTimeMS(onSlow); slow <= fast {
		t.Fatalf("slow machine should hurt: fast=%v slow=%v", fast, slow)
	}
}

func TestSerializationCostShapesRanking(t *testing.T) {
	// With serialization cost zeroed, co-location loses part of its edge;
	// the evaluator must reflect the knob.
	top := chain(t)
	arr := map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: 600}}
	clWith := cluster.NewUniform(4)
	clWithout := cluster.NewUniform(4)
	clWithout.SerializeMS = 0
	evWith, err := New(top, clWith, arr)
	if err != nil {
		t.Fatal(err)
	}
	evWithout, err := New(top, clWithout, arr)
	if err != nil {
		t.Fatal(err)
	}
	spread := []int{0, 1, 2, 3, 0, 1, 2, 3}
	gapWith := evWith.AvgTupleTimeMS(spread)
	gapWithout := evWithout.AvgTupleTimeMS(spread)
	if gapWith <= gapWithout {
		t.Fatalf("serialization cost should raise spread-schedule latency: with=%v without=%v", gapWith, gapWithout)
	}
}

// TestMachinePermutationInvariance: on a homogeneous cluster, relabeling
// machines must not change the estimate (the evaluator has no hidden
// machine-identity dependence).
func TestMachinePermutationInvariance(t *testing.T) {
	top := chain(t)
	ev := newEval(t, top, 4, 700)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		assign := make([]int, top.NumExecutors())
		for i := range assign {
			assign[i] = rng.Intn(4)
		}
		perm := rng.Perm(4)
		relabeled := make([]int, len(assign))
		for i, m := range assign {
			relabeled[i] = perm[m]
		}
		a, b := ev.AvgTupleTimeMS(assign), ev.AvgTupleTimeMS(relabeled)
		if diff := a - b; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: permutation changed estimate %v -> %v", trial, a, b)
		}
	}
}

// TestTaskPermutationWithinComponent: swapping two executors of the same
// component (same service profile, symmetric routing) must not change the
// estimate.
func TestTaskPermutationWithinComponent(t *testing.T) {
	top := chain(t)
	ev := newEval(t, top, 4, 700)
	rng := rand.New(rand.NewSource(13))
	lo, hi := top.ExecutorRange("work")
	for trial := 0; trial < 25; trial++ {
		assign := make([]int, top.NumExecutors())
		for i := range assign {
			assign[i] = rng.Intn(4)
		}
		swapped := append([]int(nil), assign...)
		i, j := lo+rng.Intn(hi-lo), lo+rng.Intn(hi-lo)
		swapped[i], swapped[j] = swapped[j], swapped[i]
		a, b := ev.AvgTupleTimeMS(assign), ev.AvgTupleTimeMS(swapped)
		if diff := a - b; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: task swap changed estimate %v -> %v", trial, a, b)
		}
	}
}
