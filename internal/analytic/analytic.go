// Package analytic is a closed-form queueing-network approximation of the
// simulated DSDPS: given a topology, a cluster and an assignment it
// estimates the stabilized average end-to-end tuple processing time in
// microseconds of CPU time instead of the discrete-event simulator's
// hundreds of milliseconds.
//
// The DRL training loops need 10³–10⁴ reward evaluations (10,000 offline
// samples alone, §3.2.1); this evaluator provides them cheaply while
// preserving the simulator's ranking of assignments (verified by a
// rank-correlation test against internal/sim). The approximation:
//
//  1. Propagate per-executor tuple arrival rates through the graph
//     (selectivities and grouping splits).
//  2. Inflate service times by machine CPU utilization (processor-sharing
//     1/(1−ρ) factor) and compute per-executor M/M/1 sojourn times.
//  3. Charge per-edge transfer delays by communication tier, inflated by
//     the source machine's outbound network utilization.
//  4. Combine along the DAG: a tuple tree completes when its slowest path
//     does, so end-to-end latency is the max over root-to-sink paths of
//     the summed sojourn and transfer delays.
package analytic

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Evaluator estimates average tuple processing time for assignments of one
// topology on one cluster. It implements env.Environment.
type Evaluator struct {
	Top      *topology.Topology
	Cl       *cluster.Cluster
	Arrivals map[string]workload.ArrivalProcess
	// TimeMS is the control-plane clock at which Workload() samples the
	// arrival processes.
	TimeMS float64

	// OverloadMS is the latency charged to saturated executors/machines
	// (utilization ≥ 1); it dominates any feasible latency so overloaded
	// schedules rank last.
	OverloadMS float64
	// CrowdFactor mirrors the simulator's per-resident-executor service
	// overhead: service × (1 + CrowdFactor·(resident−1)).
	CrowdFactor float64

	cidx map[string]int
	base []int
}

// New returns an evaluator for the given system.
func New(top *topology.Topology, cl *cluster.Cluster, arrivals map[string]workload.ArrivalProcess) (*Evaluator, error) {
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	for _, sp := range top.Spouts() {
		if _, ok := arrivals[sp.Name]; !ok {
			return nil, fmt.Errorf("analytic: no arrival process for spout %q", sp.Name)
		}
	}
	ev := &Evaluator{
		Top:         top,
		Cl:          cl,
		Arrivals:    arrivals,
		OverloadMS:  500,
		CrowdFactor: 0.002,
		cidx:        map[string]int{},
	}
	for i, c := range top.Components {
		ev.cidx[c.Name] = i
		lo, _ := top.ExecutorRange(c.Name)
		ev.base = append(ev.base, lo)
	}
	return ev, nil
}

// N implements env.Environment.
func (ev *Evaluator) N() int { return ev.Top.NumExecutors() }

// M implements env.Environment.
func (ev *Evaluator) M() int { return ev.Cl.Size() }

// Workload implements env.Environment.
func (ev *Evaluator) Workload() []float64 {
	var w []float64
	for _, sp := range ev.Top.Spouts() {
		w = append(w, ev.Arrivals[sp.Name].RateAt(ev.TimeMS))
	}
	return w
}

// AvgTupleTimeMSSlot implements env.SlotMeasurer: the estimate is
// deterministic (no jitter to stream), so the slot is ignored.
func (ev *Evaluator) AvgTupleTimeMSSlot(_ int64, assign []int) float64 {
	return ev.AvgTupleTimeMS(assign)
}

// SlotsConcurrent implements env.SlotMeasurer: AvgTupleTimeMS works on
// per-call locals and only reads the topology/cluster/arrival state, so
// distinct slots may be measured from different goroutines (as long as
// nothing mutates the arrival rates mid-batch).
func (ev *Evaluator) SlotsConcurrent() bool { return true }

// AvgTupleTimeMS implements env.Environment: the queueing estimate of the
// stabilized average end-to-end tuple processing time for the assignment.
func (ev *Evaluator) AvgTupleTimeMS(assign []int) float64 {
	top, cl := ev.Top, ev.Cl
	nComp := len(top.Components)

	// 1. Per-executor arrival rates (tuples/s), by propagating component
	// output rates in topological order.
	lam := make([][]float64, nComp)
	for i, c := range top.Components {
		lam[i] = make([]float64, c.Parallelism)
	}
	compIn := make([]float64, nComp) // total arrival rate per component
	for _, name := range top.Order() {
		ci := ev.cidx[name]
		c := top.Components[ci]
		if c.Kind == topology.Spout {
			rate := ev.Arrivals[c.Name].RateAt(ev.TimeMS)
			compIn[ci] = rate
			for t := range lam[ci] {
				lam[ci][t] = rate / float64(c.Parallelism)
			}
		}
		outRate := compIn[ci] * c.Selectivity
		for _, e := range top.Out(name) {
			di := ev.cidx[e.To]
			d := top.Components[di]
			switch e.Grouping {
			case topology.Shuffle, topology.Fields:
				compIn[di] += outRate
				for t := range lam[di] {
					lam[di][t] += outRate / float64(d.Parallelism)
				}
			case topology.Global:
				compIn[di] += outRate
				lam[di][0] += outRate
			case topology.All:
				compIn[di] += outRate * float64(d.Parallelism)
				for t := range lam[di] {
					lam[di][t] += outRate
				}
			}
		}
	}

	// 2. Machine CPU utilization and outbound network utilization.
	cpuRho := make([]float64, cl.Size())
	netBits := make([]float64, cl.Size()) // outbound bits/s
	resident := make([]int, cl.Size())
	for _, m := range assign {
		resident[m]++
	}
	crowd := make([]float64, cl.Size())
	for m := range crowd {
		crowd[m] = 1
		if ev.CrowdFactor > 0 && resident[m] > 1 {
			crowd[m] = 1 + ev.CrowdFactor*float64(resident[m]-1)
		}
	}
	// Cross-machine inbound tuple rate per executor (pays deserialization
	// CPU), plus outbound bits per machine.
	crossIn := make([][]float64, nComp)
	for i, c := range top.Components {
		crossIn[i] = make([]float64, c.Parallelism)
	}
	for i, c := range top.Components {
		outRate := compIn[i] * c.Selectivity
		for _, e := range top.Out(c.Name) {
			di := ev.cidx[e.To]
			d := top.Components[di]
			// Traffic share from each source task to each destination task.
			for st := 0; st < c.Parallelism; st++ {
				srcM := assign[ev.base[i]+st]
				srcShare := outRate / float64(c.Parallelism)
				perDst := srcShare / float64(d.Parallelism)
				for dt := 0; dt < d.Parallelism; dt++ {
					dstM := assign[ev.base[di]+dt]
					if srcM == dstM {
						continue
					}
					r := perDst
					switch e.Grouping {
					case topology.Global:
						if dt != 0 {
							continue
						}
						r = srcShare
					case topology.All:
						r = srcShare
					}
					crossIn[di][dt] += r
					// Tuples on the wire carry the *source* component's
					// emitted-tuple size (matching the simulator).
					netBits[srcM] += r * c.TupleBytes * 8
				}
			}
		}
	}
	// serviceOf is the effective mean service demand of an executor: the
	// component cost plus deserialization of its cross-machine arrivals.
	serviceOf := func(i, t int) float64 {
		s := top.Components[i].ServiceMeanMS
		if lam[i][t] > 0 && cl.SerializeMS > 0 {
			s += cl.SerializeMS * crossIn[i][t] / lam[i][t]
		}
		return s
	}
	// meanBusy[m] is the expected number of simultaneously busy executors
	// on machine m (offered load in server units); cpuRho normalizes it by
	// the core count.
	meanBusy := make([]float64, cl.Size())
	for i := range top.Components {
		for t := 0; t < top.Components[i].Parallelism; t++ {
			m := assign[ev.base[i]+t]
			meanBusy[m] += lam[i][t] * serviceOf(i, t) * crowd[m] / 1000 / cl.Machines[m].SpeedFactor
		}
	}
	machFactor := make([]float64, cl.Size())
	for m := range meanBusy {
		cpuRho[m] = meanBusy[m] / float64(cl.Machines[m].Cores)
		machFactor[m] = contentionFactor(meanBusy[m], cl.Machines[m].Cores)
	}
	netFactor := make([]float64, cl.Size())
	for m := range netFactor {
		rho := netBits[m] / (cl.Machines[m].NetMbps * 1e6)
		if rho >= 0.95 {
			netFactor[m] = 20
		} else {
			netFactor[m] = 1 / (1 - rho)
		}
	}

	// 3. Per-executor sojourn times (ms): M/M/1 with service inflated by
	// machine CPU contention.
	sojourn := make([][]float64, nComp)
	for i, c := range top.Components {
		sojourn[i] = make([]float64, c.Parallelism)
		for t := 0; t < c.Parallelism; t++ {
			m := assign[ev.base[i]+t]
			mach := cl.Machines[m]
			if cpuRho[m] >= 0.88 {
				// The machine cannot keep up with its offered load; queues
				// diverge regardless of per-executor rates.
				sojourn[i][t] = ev.OverloadMS
				continue
			}
			sEff := serviceOf(i, t) * crowd[m] * machFactor[m] / mach.SpeedFactor
			util := lam[i][t] * sEff / 1000
			if util >= 0.95 {
				sojourn[i][t] = ev.OverloadMS
				continue
			}
			sojourn[i][t] = sEff / (1 - util)
		}
	}

	// Component-level expected sojourn: weighted by each task's share of
	// the component's arrivals.
	compSojourn := make([]float64, nComp)
	for i := range top.Components {
		var tot, acc float64
		for t, l := range lam[i] {
			tot += l
			acc += l * sojourn[i][t]
		}
		if tot > 0 {
			compSojourn[i] = acc / tot
		}
	}

	// Expected transfer delay per edge: traffic-weighted over task pairs.
	edgeDelay := func(e topology.Edge) float64 {
		si, di := ev.cidx[e.From], ev.cidx[e.To]
		src, dst := top.Components[si], top.Components[di]
		var acc, tot float64
		for st := 0; st < src.Parallelism; st++ {
			srcM := assign[ev.base[si]+st]
			w := lam[si][st]
			for dt := 0; dt < dst.Parallelism; dt++ {
				if e.Grouping == topology.Global && dt != 0 {
					continue
				}
				dstM := assign[ev.base[di]+dt]
				d := ev.Cl.TransferMS(srcM, dstM, src.TupleBytes)
				if srcM != dstM {
					d *= netFactor[srcM]
				}
				acc += w * d
				tot += w
			}
		}
		if tot == 0 {
			return 0
		}
		return acc / tot
	}

	// 4. Critical-path end-to-end latency per component (memoized DP).
	memo := make([]float64, nComp)
	done := make([]bool, nComp)
	var rec func(ci int) float64
	rec = func(ci int) float64 {
		if done[ci] {
			return memo[ci]
		}
		c := top.Components[ci]
		best := 0.0
		for _, e := range top.Out(c.Name) {
			v := edgeDelay(e) + rec(ev.cidx[e.To])
			if v > best {
				best = v
			}
		}
		memo[ci] = compSojourn[ci] + best
		done[ci] = true
		return memo[ci]
	}

	var acc, tot float64
	for _, sp := range top.Spouts() {
		rate := ev.Arrivals[sp.Name].RateAt(ev.TimeMS)
		acc += rate * rec(ev.cidx[sp.Name])
		tot += rate
	}
	if tot == 0 {
		return 0
	}
	v := acc / tot
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return ev.OverloadMS
	}
	return v
}

// contentionFactor mirrors the simulator's processor-sharing contention:
// service slows by meanBusy/cores once the time-averaged busy level exceeds
// the core count, with a mild burst allowance below it (the EWMA in the
// simulator occasionally spikes above cores even when the mean is lower).
func contentionFactor(meanBusy float64, cores int) float64 {
	if meanBusy <= 0 || cores <= 0 {
		return 1
	}
	c := float64(cores)
	if meanBusy >= c {
		return meanBusy / c
	}
	// Smooth approach to the knee: quadratic in the load fraction.
	frac := meanBusy / c
	return 1 + 0.15*frac*frac
}
