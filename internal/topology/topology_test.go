package topology

import (
	"strings"
	"testing"
)

func buildChain(t *testing.T) *Topology {
	t.Helper()
	top, err := NewBuilder("chain").
		AddSpout("spout", 2, 0.05, 1, 100).
		AddBolt("split", 3, 0.2, 2, 60).
		AddBolt("count", 3, 0.1, 1, 40).
		AddBolt("db", 2, 0.3, 0, 0).
		Connect("spout", "split", Shuffle).
		Connect("split", "count", Fields).
		Connect("count", "db", Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestBuildChain(t *testing.T) {
	top := buildChain(t)
	if top.NumExecutors() != 10 {
		t.Fatalf("N=%d want 10", top.NumExecutors())
	}
	if got := top.Component("split").Parallelism; got != 3 {
		t.Fatalf("split parallelism %d", got)
	}
	lo, hi := top.ExecutorRange("count")
	if lo != 5 || hi != 8 {
		t.Fatalf("count range [%d,%d) want [5,8)", lo, hi)
	}
	execs := top.Executors()
	if execs[5].Comp.Name != "count" || execs[5].Task != 0 {
		t.Fatalf("executor 5 = %+v", execs[5])
	}
	if execs[9].Comp.Name != "db" || execs[9].Task != 1 {
		t.Fatalf("executor 9 = %+v", execs[9])
	}
	if len(top.Spouts()) != 1 || top.Spouts()[0].Name != "spout" {
		t.Fatal("Spouts() wrong")
	}
}

func TestTopoOrder(t *testing.T) {
	top := buildChain(t)
	order := top.Order()
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range top.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %s->%s violates topo order %v", e.From, e.To, order)
		}
	}
}

func TestDiamondPaths(t *testing.T) {
	top, err := NewBuilder("diamond").
		AddSpout("s", 1, 0.1, 1, 100).
		AddBolt("a", 1, 0.1, 1, 100).
		AddBolt("b", 1, 0.1, 1, 100).
		AddBolt("sink", 1, 0.1, 0, 0).
		Connect("s", "a", Shuffle).
		Connect("s", "b", Shuffle).
		Connect("a", "sink", Shuffle).
		Connect("b", "sink", Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	paths := top.Paths()
	if len(paths) != 2 {
		t.Fatalf("paths %v", paths)
	}
	for _, p := range paths {
		if p[0] != "s" || p[len(p)-1] != "sink" || len(p) != 3 {
			t.Fatalf("bad path %v", p)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name    string
		build   func() (*Topology, error)
		errPart string
	}{
		{"no spout", func() (*Topology, error) {
			return NewBuilder("x").AddBolt("b", 1, 1, 1, 1).Build()
		}, "no spout"},
		{"unknown edge target", func() (*Topology, error) {
			return NewBuilder("x").AddSpout("s", 1, 1, 1, 1).Connect("s", "ghost", Shuffle).Build()
		}, "unknown component"},
		{"unknown edge source", func() (*Topology, error) {
			return NewBuilder("x").AddSpout("s", 1, 1, 1, 1).AddBolt("b", 1, 1, 1, 1).
				Connect("ghost", "b", Shuffle).Build()
		}, "unknown component"},
		{"edge into spout", func() (*Topology, error) {
			return NewBuilder("x").AddSpout("s", 1, 1, 1, 1).AddBolt("b", 1, 1, 1, 1).
				Connect("s", "b", Shuffle).Connect("b", "s", Shuffle).Build()
		}, "cannot have inputs"},
		{"cycle", func() (*Topology, error) {
			return NewBuilder("x").AddSpout("s", 1, 1, 1, 1).
				AddBolt("a", 1, 1, 1, 1).AddBolt("b", 1, 1, 1, 1).
				Connect("s", "a", Shuffle).Connect("a", "b", Shuffle).Connect("b", "a", Shuffle).Build()
		}, "cycle"},
		{"unreachable bolt", func() (*Topology, error) {
			return NewBuilder("x").AddSpout("s", 1, 1, 1, 1).AddBolt("orphan", 1, 1, 1, 1).Build()
		}, "unreachable"},
		{"duplicate name", func() (*Topology, error) {
			return NewBuilder("x").AddSpout("s", 1, 1, 1, 1).AddBolt("s", 1, 1, 1, 1).Build()
		}, "duplicate"},
		{"zero parallelism", func() (*Topology, error) {
			return NewBuilder("x").AddSpout("s", 0, 1, 1, 1).Build()
		}, "parallelism"},
		{"negative cost", func() (*Topology, error) {
			return NewBuilder("x").AddSpout("s", 1, -1, 1, 1).Build()
		}, "negative"},
		{"empty name", func() (*Topology, error) {
			return NewBuilder("x").AddSpout("", 1, 1, 1, 1).Build()
		}, "empty"},
	}
	for _, c := range cases {
		_, err := c.build()
		if err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.errPart)
		}
	}
}

func TestKindAndGroupingStrings(t *testing.T) {
	if Spout.String() != "spout" || Bolt.String() != "bolt" {
		t.Fatal("Kind strings")
	}
	for g, want := range map[Grouping]string{Shuffle: "shuffle", Fields: "fields", All: "all", Global: "global"} {
		if g.String() != want {
			t.Fatalf("grouping %d string %q", g, g.String())
		}
	}
}

func TestInOutEdges(t *testing.T) {
	top := buildChain(t)
	if len(top.Out("spout")) != 1 || top.Out("spout")[0].To != "split" {
		t.Fatal("Out wrong")
	}
	if len(top.In("db")) != 1 || top.In("db")[0].From != "count" {
		t.Fatal("In wrong")
	}
	if len(top.Out("db")) != 0 {
		t.Fatal("sink should have no outs")
	}
}

func TestExecutorRangePanicsOnUnknown(t *testing.T) {
	top := buildChain(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	top.ExecutorRange("nope")
}

func TestMultiSpout(t *testing.T) {
	top, err := NewBuilder("multi").
		AddSpout("s1", 2, 0.1, 1, 50).
		AddSpout("s2", 3, 0.1, 1, 50).
		AddBolt("join", 2, 0.2, 1, 50).
		Connect("s1", "join", Shuffle).
		Connect("s2", "join", Fields).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Spouts()) != 2 {
		t.Fatal("want 2 spouts")
	}
	if len(top.In("join")) != 2 {
		t.Fatal("join should have 2 inputs")
	}
	if top.NumExecutors() != 7 {
		t.Fatalf("N=%d", top.NumExecutors())
	}
}
