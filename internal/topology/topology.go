// Package topology models the logical layer of a DSDPS application (§2.1):
// a directed acyclic graph whose vertices are data sources (spouts) and
// processing units (bolts), with per-edge grouping policies that define how
// tuples are distributed among the parallel tasks of the downstream
// component. Terminology follows Apache Storm (§2.2): spout, bolt, topology,
// executor.
package topology

import (
	"fmt"
	"sort"
)

// Kind distinguishes data sources from processing units.
type Kind int

// Component kinds.
const (
	Spout Kind = iota
	Bolt
)

// String returns "spout" or "bolt".
func (k Kind) String() string {
	if k == Spout {
		return "spout"
	}
	return "bolt"
}

// Grouping defines how tuples on an edge are distributed among the
// downstream component's tasks (§2.1).
type Grouping int

// Supported grouping policies.
const (
	// Shuffle sends each tuple to a uniformly random downstream task.
	Shuffle Grouping = iota
	// Fields hashes a tuple key so equal keys reach the same task.
	Fields
	// All replicates every tuple to every downstream task.
	All
	// Global sends every tuple to the lowest-indexed downstream task.
	Global
)

// String returns the Storm name of the grouping.
func (g Grouping) String() string {
	switch g {
	case Shuffle:
		return "shuffle"
	case Fields:
		return "fields"
	case All:
		return "all"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("Grouping(%d)", int(g))
	}
}

// Component is a spout or bolt with its runtime cost profile. The cost
// fields parameterize the simulator and the analytic evaluator; they play
// the role of the per-PU behaviour that the paper's physical Storm cluster
// exhibits at runtime.
type Component struct {
	Name        string
	Kind        Kind
	Parallelism int // number of executors (tasks) for this component

	// ServiceMeanMS is the mean CPU demand per tuple in milliseconds on a
	// single reference core.
	ServiceMeanMS float64
	// Selectivity is the mean number of output tuples emitted per input
	// tuple processed (0 for sinks).
	Selectivity float64
	// TupleBytes is the mean serialized size of emitted tuples, which
	// drives network transfer cost.
	TupleBytes float64
}

// Edge is a directed stream between two components.
type Edge struct {
	From, To string
	Grouping Grouping
}

// Topology is a validated application graph.
type Topology struct {
	Name       string
	Components []*Component
	Edges      []Edge

	byName map[string]*Component
	outs   map[string][]Edge // edges grouped by source component
	ins    map[string][]Edge // edges grouped by destination component
	order  []string          // topological order of component names

	executors []Executor
	execBase  map[string]int // component name -> first executor index
}

// Executor is one parallel task instance of a component, identified by a
// global index in [0, N). The paper's scheduling unit ("thread") is exactly
// this.
type Executor struct {
	Index int        // global executor index
	Comp  *Component // owning component
	Task  int        // instance number within the component, in [0, Parallelism)
}

// Builder accumulates components and edges and validates them into a
// Topology.
type Builder struct {
	name       string
	components []*Component
	edges      []Edge
	err        error
}

// NewBuilder starts a topology definition.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

// AddSpout adds a data source. parallelism is its executor count,
// serviceMS the per-tuple emit overhead, selectivity the tuples emitted per
// arrival (normally 1), and bytes the emitted tuple size.
func (b *Builder) AddSpout(name string, parallelism int, serviceMS, selectivity, bytes float64) *Builder {
	b.add(&Component{Name: name, Kind: Spout, Parallelism: parallelism,
		ServiceMeanMS: serviceMS, Selectivity: selectivity, TupleBytes: bytes})
	return b
}

// AddBolt adds a processing unit.
func (b *Builder) AddBolt(name string, parallelism int, serviceMS, selectivity, bytes float64) *Builder {
	b.add(&Component{Name: name, Kind: Bolt, Parallelism: parallelism,
		ServiceMeanMS: serviceMS, Selectivity: selectivity, TupleBytes: bytes})
	return b
}

func (b *Builder) add(c *Component) {
	if b.err != nil {
		return
	}
	if c.Name == "" {
		b.err = fmt.Errorf("topology: empty component name")
		return
	}
	if c.Parallelism <= 0 {
		b.err = fmt.Errorf("topology: component %q has parallelism %d", c.Name, c.Parallelism)
		return
	}
	if c.ServiceMeanMS < 0 || c.Selectivity < 0 || c.TupleBytes < 0 {
		b.err = fmt.Errorf("topology: component %q has negative cost parameters", c.Name)
		return
	}
	for _, existing := range b.components {
		if existing.Name == c.Name {
			b.err = fmt.Errorf("topology: duplicate component %q", c.Name)
			return
		}
	}
	b.components = append(b.components, c)
}

// Connect adds a stream from one component to another.
func (b *Builder) Connect(from, to string, g Grouping) *Builder {
	if b.err != nil {
		return b
	}
	b.edges = append(b.edges, Edge{From: from, To: to, Grouping: g})
	return b
}

// Build validates the graph and returns the topology. Validation enforces:
// at least one spout, all edge endpoints exist, spouts have no inputs,
// the graph is acyclic, and every bolt is reachable from some spout.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	t := &Topology{
		Name:       b.name,
		Components: b.components,
		Edges:      b.edges,
		byName:     map[string]*Component{},
		outs:       map[string][]Edge{},
		ins:        map[string][]Edge{},
		execBase:   map[string]int{},
	}
	for _, c := range t.Components {
		t.byName[c.Name] = c
	}
	hasSpout := false
	for _, c := range t.Components {
		if c.Kind == Spout {
			hasSpout = true
		}
	}
	if !hasSpout {
		return nil, fmt.Errorf("topology %q: no spout", t.Name)
	}
	for _, e := range t.Edges {
		if _, ok := t.byName[e.From]; !ok {
			return nil, fmt.Errorf("topology %q: edge from unknown component %q", t.Name, e.From)
		}
		to, ok := t.byName[e.To]
		if !ok {
			return nil, fmt.Errorf("topology %q: edge to unknown component %q", t.Name, e.To)
		}
		if to.Kind == Spout {
			return nil, fmt.Errorf("topology %q: spout %q cannot have inputs", t.Name, e.To)
		}
		t.outs[e.From] = append(t.outs[e.From], e)
		t.ins[e.To] = append(t.ins[e.To], e)
	}
	order, err := t.topoSort()
	if err != nil {
		return nil, err
	}
	t.order = order
	// Reachability: every bolt must be downstream of a spout.
	reach := map[string]bool{}
	for _, c := range t.Components {
		if c.Kind == Spout {
			reach[c.Name] = true
		}
	}
	for _, name := range order {
		if !reach[name] {
			continue
		}
		for _, e := range t.outs[name] {
			reach[e.To] = true
		}
	}
	for _, c := range t.Components {
		if !reach[c.Name] {
			return nil, fmt.Errorf("topology %q: component %q unreachable from any spout", t.Name, c.Name)
		}
	}
	// Enumerate executors in component order.
	idx := 0
	for _, c := range t.Components {
		t.execBase[c.Name] = idx
		for task := 0; task < c.Parallelism; task++ {
			t.executors = append(t.executors, Executor{Index: idx, Comp: c, Task: task})
			idx++
		}
	}
	return t, nil
}

// topoSort returns component names in topological order, or an error if the
// graph has a cycle.
func (t *Topology) topoSort() ([]string, error) {
	indeg := map[string]int{}
	for _, c := range t.Components {
		indeg[c.Name] = 0
	}
	for _, e := range t.Edges {
		indeg[e.To]++
	}
	var frontier []string
	for name, d := range indeg {
		if d == 0 {
			frontier = append(frontier, name)
		}
	}
	sort.Strings(frontier) // deterministic order
	var order []string
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		order = append(order, n)
		var next []string
		for _, e := range t.outs[n] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				next = append(next, e.To)
			}
		}
		sort.Strings(next)
		frontier = append(frontier, next...)
	}
	if len(order) != len(t.Components) {
		return nil, fmt.Errorf("topology %q: cycle detected", t.Name)
	}
	return order, nil
}

// Component returns the named component, or nil.
func (t *Topology) Component(name string) *Component { return t.byName[name] }

// Out returns the outgoing edges of a component.
func (t *Topology) Out(name string) []Edge { return t.outs[name] }

// In returns the incoming edges of a component.
func (t *Topology) In(name string) []Edge { return t.ins[name] }

// Order returns component names in topological order.
func (t *Topology) Order() []string { return t.order }

// Executors returns all executors in global-index order.
func (t *Topology) Executors() []Executor { return t.executors }

// NumExecutors returns N, the number of schedulable threads.
func (t *Topology) NumExecutors() int { return len(t.executors) }

// ExecutorRange returns the global index range [lo, hi) of a component's
// executors.
func (t *Topology) ExecutorRange(name string) (lo, hi int) {
	c := t.byName[name]
	if c == nil {
		panic(fmt.Sprintf("topology: unknown component %q", name))
	}
	lo = t.execBase[name]
	return lo, lo + c.Parallelism
}

// Spouts returns the spout components.
func (t *Topology) Spouts() []*Component {
	var out []*Component
	for _, c := range t.Components {
		if c.Kind == Spout {
			out = append(out, c)
		}
	}
	return out
}

// Paths enumerates all spout-to-sink component paths (by name). Used by the
// analytic evaluator's critical-path estimate. The count is small for the
// paper's topologies (≤ 4).
func (t *Topology) Paths() [][]string {
	var paths [][]string
	var walk func(name string, acc []string)
	walk = func(name string, acc []string) {
		acc = append(acc, name)
		outs := t.outs[name]
		if len(outs) == 0 {
			paths = append(paths, append([]string(nil), acc...))
			return
		}
		for _, e := range outs {
			walk(e.To, acc)
		}
	}
	for _, c := range t.Components {
		if c.Kind == Spout {
			walk(c.Name, nil)
		}
	}
	return paths
}
