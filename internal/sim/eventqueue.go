package sim

// eventQueue is a typed 4-ary min-heap of events ordered by (t, seq).
//
// It replaces the previous container/heap implementation: pushing through
// heap.Push(interface{}) boxes every event (one allocation per push on the
// hottest path of the simulator), while the typed heap stores event values
// in a reusable slice and allocates only on slice growth, which stops once
// the simulation reaches its steady-state event population. The 4-ary shape
// halves the tree depth of a binary heap; sift-down does a few more
// comparisons per level but touches adjacent elements (one cache line),
// which is a net win for the wide, shallow heaps a DES produces.
//
// (t, seq) is a total order — seq is unique per event — so the pop sequence
// is completely determined by the pushed events and is byte-for-byte
// identical to what any other correct priority queue would produce.
type eventQueue struct {
	ev []event
}

// less orders events by time, then by push sequence for determinism.
func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (q *eventQueue) len() int { return len(q.ev) }

// peekTime returns the earliest event time; the queue must be non-empty.
func (q *eventQueue) peekTime() float64 { return q.ev[0].t }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(&q.ev[i], &q.ev[p]) {
			break
		}
		q.ev[i], q.ev[p] = q.ev[p], q.ev[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev = q.ev[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return top
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.ev)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(&q.ev[c], &q.ev[min]) {
				min = c
			}
		}
		if !eventLess(&q.ev[min], &q.ev[i]) {
			return
		}
		q.ev[i], q.ev[min] = q.ev[min], q.ev[i]
		i = min
	}
}
