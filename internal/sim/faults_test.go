package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func faultSim(t *testing.T, ackTimeoutMS float64) *Sim {
	t.Helper()
	top := chainTopology(t)
	cl := cluster.NewUniform(3)
	arr := map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: 150}}
	cfg := DefaultConfig(top, cl, arr, 21)
	cfg.WarmupAmplitude = 0
	cfg.MoveOutageMS = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ackTimeoutMS > 0 {
		s.EnableAckTimeout(ackTimeoutMS)
	}
	if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNoReplaysWithoutFaults(t *testing.T) {
	s := faultSim(t, 30_000) // generous deadline, healthy cluster
	s.RunUntil(30_000)
	if s.Replayed() != 0 {
		t.Fatalf("healthy run replayed %d tuples", s.Replayed())
	}
	if s.Completed() == 0 {
		t.Fatal("no completions")
	}
}

func TestMachineFailureTriggersReplays(t *testing.T) {
	s := faultSim(t, 5_000)
	s.RunUntil(20_000)
	before := s.Completed()
	s.FailMachine(1, 10_000)
	s.RunUntil(60_000)
	if s.Replayed() == 0 {
		t.Fatal("machine failure with ack timeouts should replay lost tuples")
	}
	if s.Completed() <= before {
		t.Fatal("pipeline did not recover after machine failure")
	}
	// After recovery, in-flight set must not leak.
	if len(s.acks) > 1000 {
		t.Fatalf("%d ack entries outstanding after recovery", len(s.acks))
	}
}

func TestMachineFailureWithoutTimeoutDropsTuples(t *testing.T) {
	s := faultSim(t, 0)
	// Fail repeatedly so some tuples are reliably in flight on the failed
	// machine at a failure instant.
	for i := 0; i < 10; i++ {
		s.RunUntil(float64(5_000 + i*3_000))
		s.FailMachine(i%3, 2_000)
	}
	s.RunUntil(60_000)
	if s.Replayed() != 0 {
		t.Fatal("replays should not occur with timeouts disabled")
	}
	if s.Dropped() == 0 {
		t.Fatal("a failure without ack timeouts should drop tuples")
	}
	if s.Completed() == 0 {
		t.Fatal("surviving machines should keep completing tuples")
	}
}

func TestTightAckDeadlineReplaysSlowTuples(t *testing.T) {
	// A deadline near the typical end-to-end latency forces replays of the
	// slower tuples even on a healthy cluster (kept short: every replay
	// re-enters the pipeline).
	s := faultSim(t, 1.5)
	s.RunUntil(5_000)
	if s.Replayed() == 0 {
		t.Fatal("near-latency ack deadline should trigger replays")
	}
	if s.Completed() == 0 {
		t.Fatal("most tuples should still complete")
	}
}

func TestFailedMachineProcessesNothingWhileDown(t *testing.T) {
	s := faultSim(t, 5_000)
	s.RunUntil(10_000)
	s.FailMachine(2, 20_000)
	s.RunUntil(15_000)
	for i := range s.execs {
		e := &s.execs[i]
		if e.machine == 2 && e.busy {
			t.Fatalf("executor %d busy on failed machine", i)
		}
	}
	s.RunUntil(60_000)
	if s.Completed() == 0 {
		t.Fatal("cluster should keep working")
	}
}

func TestReplayLatencyMeasuredFromReplayEmission(t *testing.T) {
	// Replayed tuples must not poison the latency metric with the full
	// timeout span: stabilized average should stay far below the deadline.
	s := faultSim(t, 2_000)
	s.RunUntil(10_000)
	s.FailMachine(1, 3_000)
	s.RunUntil(60_000)
	avg := s.AvgOverLastWindows(5)
	if avg <= 0 || avg > 500 {
		t.Fatalf("post-recovery stabilized latency %v implausible", avg)
	}
}
