package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func faultSim(t *testing.T, ackTimeoutMS float64) *Sim {
	t.Helper()
	top := chainTopology(t)
	cl := cluster.NewUniform(3)
	arr := map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: 150}}
	cfg := DefaultConfig(top, cl, arr, 21)
	cfg.WarmupAmplitude = 0
	cfg.MoveOutageMS = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ackTimeoutMS > 0 {
		s.EnableAckTimeout(ackTimeoutMS)
	}
	if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNoReplaysWithoutFaults(t *testing.T) {
	s := faultSim(t, 30_000) // generous deadline, healthy cluster
	s.RunUntil(30_000)
	if s.Replayed() != 0 {
		t.Fatalf("healthy run replayed %d tuples", s.Replayed())
	}
	if s.Completed() == 0 {
		t.Fatal("no completions")
	}
}

func TestMachineFailureTriggersReplays(t *testing.T) {
	s := faultSim(t, 5_000)
	s.RunUntil(20_000)
	before := s.Completed()
	s.FailMachine(1, 10_000)
	s.RunUntil(60_000)
	if s.Replayed() == 0 {
		t.Fatal("machine failure with ack timeouts should replay lost tuples")
	}
	if s.Completed() <= before {
		t.Fatal("pipeline did not recover after machine failure")
	}
	// After recovery, in-flight set must not leak.
	if len(s.acks) > 1000 {
		t.Fatalf("%d ack entries outstanding after recovery", len(s.acks))
	}
}

func TestMachineFailureWithoutTimeoutDropsTuples(t *testing.T) {
	s := faultSim(t, 0)
	// Fail repeatedly so some tuples are reliably in flight on the failed
	// machine at a failure instant.
	for i := 0; i < 10; i++ {
		s.RunUntil(float64(5_000 + i*3_000))
		s.FailMachine(i%3, 2_000)
	}
	s.RunUntil(60_000)
	if s.Replayed() != 0 {
		t.Fatal("replays should not occur with timeouts disabled")
	}
	if s.Dropped() == 0 {
		t.Fatal("a failure without ack timeouts should drop tuples")
	}
	if s.Completed() == 0 {
		t.Fatal("surviving machines should keep completing tuples")
	}
}

func TestTightAckDeadlineReplaysSlowTuples(t *testing.T) {
	// A deadline near the typical end-to-end latency forces replays of the
	// slower tuples even on a healthy cluster (kept short: every replay
	// re-enters the pipeline).
	s := faultSim(t, 1.5)
	s.RunUntil(5_000)
	if s.Replayed() == 0 {
		t.Fatal("near-latency ack deadline should trigger replays")
	}
	if s.Completed() == 0 {
		t.Fatal("most tuples should still complete")
	}
}

func TestFailedMachineProcessesNothingWhileDown(t *testing.T) {
	s := faultSim(t, 5_000)
	s.RunUntil(10_000)
	s.FailMachine(2, 20_000)
	s.RunUntil(15_000)
	for i := range s.execs {
		e := &s.execs[i]
		if e.machine == 2 && e.busy {
			t.Fatalf("executor %d busy on failed machine", i)
		}
	}
	s.RunUntil(60_000)
	if s.Completed() == 0 {
		t.Fatal("cluster should keep working")
	}
}

func TestScheduledFailureMatchesImperative(t *testing.T) {
	// A declaratively scheduled failure must reproduce the imperative
	// two-phase run exactly: RunUntil(T) pops every event with t ≤ T, and
	// continuous-time event stamps never land exactly on the integer
	// deadline, so the fault fires at the same point of the event sequence
	// either way.
	decl := faultSim(t, 5_000)
	if err := decl.ScheduleFailure(1, 20_000, 10_000); err != nil {
		t.Fatal(err)
	}
	decl.RunUntil(60_000)

	imp := faultSim(t, 5_000)
	imp.RunUntil(20_000)
	imp.FailMachine(1, 10_000)
	imp.RunUntil(60_000)

	if decl.Completed() != imp.Completed() || decl.Replayed() != imp.Replayed() ||
		decl.Emitted() != imp.Emitted() {
		t.Fatalf("declarative (c=%d r=%d e=%d) diverged from imperative (c=%d r=%d e=%d)",
			decl.Completed(), decl.Replayed(), decl.Emitted(),
			imp.Completed(), imp.Replayed(), imp.Emitted())
	}
	if decl.Replayed() == 0 {
		t.Fatal("scheduled failure triggered no replays")
	}
}

func TestScheduleFailureValidation(t *testing.T) {
	s := faultSim(t, 0)
	if err := s.ScheduleFailure(99, 1_000, 500); err == nil {
		t.Fatal("invalid machine should fail")
	}
	if err := s.ScheduleFailure(0, 1_000, -1); err == nil {
		t.Fatal("negative outage should fail")
	}
	s.RunUntil(5_000)
	if err := s.ScheduleFailure(0, 1_000, 500); err == nil {
		t.Fatal("scheduling in the past should fail")
	}
}

func TestStepPrimitivesMatchRunUntil(t *testing.T) {
	// Driving the exported step primitives by hand must be
	// indistinguishable from RunUntil — they are the same loop decomposed.
	a := faultSim(t, 0)
	b := faultSim(t, 0)
	a.RunUntil(10_000)
	for b.HasPendingEvents() && b.PeekNextEventTime() <= 10_000 {
		b.ProcessNextEvent()
	}
	b.AdvanceTo(10_000)
	if a.Completed() != b.Completed() || a.Emitted() != b.Emitted() || a.Now() != b.Now() {
		t.Fatalf("primitives diverged: RunUntil (c=%d e=%d now=%v) manual (c=%d e=%d now=%v)",
			a.Completed(), a.Emitted(), a.Now(), b.Completed(), b.Emitted(), b.Now())
	}
	if got := a.AvgOverLastWindows(3) - b.AvgOverLastWindows(3); got != 0 {
		t.Fatalf("window metrics diverged by %v", got)
	}
}

func TestReplayLatencyMeasuredFromReplayEmission(t *testing.T) {
	// Replayed tuples must not poison the latency metric with the full
	// timeout span: stabilized average should stay far below the deadline.
	s := faultSim(t, 2_000)
	s.RunUntil(10_000)
	s.FailMachine(1, 3_000)
	s.RunUntil(60_000)
	avg := s.AvgOverLastWindows(5)
	if avg <= 0 || avg > 500 {
		t.Fatalf("post-recovery stabilized latency %v implausible", avg)
	}
}
