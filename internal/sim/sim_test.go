package sim

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
	"repro/internal/workload"
)

func chainTopology(t testing.TB) *topology.Topology {
	t.Helper()
	top, err := topology.NewBuilder("chain").
		AddSpout("spout", 2, 0.05, 1, 120).
		AddBolt("work", 4, 0.4, 1, 80).
		AddBolt("sink", 2, 0.1, 0, 0).
		Connect("spout", "work", topology.Shuffle).
		Connect("work", "sink", topology.Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func newSim(t testing.TB, top *topology.Topology, m int, rate float64, seed int64) *Sim {
	t.Helper()
	cl := cluster.NewUniform(m)
	arr := map[string]workload.ArrivalProcess{}
	for _, sp := range top.Spouts() {
		arr[sp.Name] = workload.ConstantRate{PerSecond: rate}
	}
	cfg := DefaultConfig(top, cl, arr, seed)
	cfg.WarmupAmplitude = 0 // most tests want stationary behaviour
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func roundRobin(n, m int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i % m
	}
	return a
}

func TestNewValidation(t *testing.T) {
	top := chainTopology(t)
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing topology/cluster should fail")
	}
	// Missing arrival process.
	cfg := DefaultConfig(top, cluster.NewUniform(2), map[string]workload.ArrivalProcess{}, 1)
	if _, err := New(cfg); err == nil {
		t.Fatal("missing spout arrivals should fail")
	}
}

func TestDeployValidation(t *testing.T) {
	s := newSim(t, chainTopology(t), 3, 100, 1)
	if err := s.Deploy([]int{0}); err == nil {
		t.Fatal("short assignment should fail")
	}
	if err := s.Deploy([]int{0, 1, 2, 0, 1, 2, 99, 0}); err == nil {
		t.Fatal("invalid machine should fail")
	}
}

func TestTuplesFlowAndComplete(t *testing.T) {
	top := chainTopology(t)
	s := newSim(t, top, 3, 200, 42)
	if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(30_000)
	if s.Completed() == 0 {
		t.Fatal("no tuples completed")
	}
	// Roughly rate × horizon completions (allowing in-flight stragglers).
	want := 200.0 * 30
	got := float64(s.Completed())
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("completed %v, expected near %v", got, want)
	}
	avg := s.AvgOverLastWindows(3)
	if avg <= 0 {
		t.Fatal("no latency measured")
	}
	// Sanity: latency should exceed the bare service-time sum (~0.55ms)
	// and stay below a second for this light load.
	if avg < 0.4 || avg > 1000 {
		t.Fatalf("implausible avg latency %v ms", avg)
	}
}

func TestDeterminism(t *testing.T) {
	top := chainTopology(t)
	run := func() float64 {
		s := newSim(t, top, 3, 150, 7)
		if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(20_000)
		return s.AvgOverLastWindows(2)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	top := chainTopology(t)
	make := func(seed int64) float64 {
		s := newSim(t, top, 3, 150, seed)
		if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(20_000)
		return s.AvgOverLastWindows(2)
	}
	if make(1) == make(2) {
		t.Fatal("different seeds produced identical latency (suspicious)")
	}
}

// TestColocationBeatsScatter: with communication costs dominating, packing
// the pipeline on fewer machines must beat scattering every hop across the
// network — the basic signal every scheduler in the paper exploits.
func TestColocationBeatsScatter(t *testing.T) {
	top, err := topology.NewBuilder("pair").
		AddSpout("s", 1, 0.02, 1, 400).
		AddBolt("a", 1, 0.1, 1, 400).
		AddBolt("b", 1, 0.1, 0, 0).
		Connect("s", "a", topology.Shuffle).
		Connect("a", "b", topology.Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	eval := func(assign []int) float64 {
		s := newSim(t, top, 3, 100, 5)
		if err := s.Deploy(assign); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(30_000)
		return s.AvgOverLastWindows(3)
	}
	colocated := eval([]int{0, 0, 0})
	scattered := eval([]int{0, 1, 2})
	if colocated >= scattered {
		t.Fatalf("colocated %.3fms should beat scattered %.3fms", colocated, scattered)
	}
	// The gap should be at least the two network RTT legs it saves.
	if scattered-colocated < 0.3 {
		t.Fatalf("network cost too weak: colocated %.3f scattered %.3f", colocated, scattered)
	}
}

// TestOverloadHurts: packing far more service demand onto one machine than
// its cores can absorb must be worse than spreading — the opposing force to
// co-location.
func TestOverloadHurts(t *testing.T) {
	top, err := topology.NewBuilder("hot").
		AddSpout("s", 2, 0.02, 1, 100).
		AddBolt("heavy", 8, 2.0, 0, 0).
		Connect("s", "heavy", topology.Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	eval := func(assign []int) float64 {
		s := newSim(t, top, 4, 1800, 9)
		if err := s.Deploy(assign); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(40_000)
		return s.AvgOverLastWindows(3)
	}
	// 1800 tuples/s × 2 ms = 3.6 cores of demand: near saturation for one
	// 4-core machine, comfortable when spread over four machines.
	packed := eval([]int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	spread := eval([]int{0, 1, 0, 1, 2, 3, 0, 1, 2, 3})
	if spread >= packed {
		t.Fatalf("spread %.3fms should beat packed %.3fms under CPU overload", spread, packed)
	}
}

func TestWarmupDecay(t *testing.T) {
	top := chainTopology(t)
	cl := cluster.NewUniform(3)
	arr := map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: 150}}
	cfg := DefaultConfig(top, cl, arr, 11)
	// Defaults keep warm-up on.
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(20 * 60 * 1000)
	wins := s.Windows()
	if len(wins) < 100 {
		t.Fatalf("only %d windows", len(wins))
	}
	early := (wins[1].AvgMS + wins[2].AvgMS + wins[3].AvgMS) / 3
	late := s.AvgOverLastWindows(5)
	if early <= late*1.12 {
		t.Fatalf("warm-up should inflate early latency: early %.3f late %.3f", early, late)
	}
}

func TestRedeployMinimalImpact(t *testing.T) {
	top := chainTopology(t)
	s := newSim(t, top, 3, 150, 13)
	n := top.NumExecutors()
	first := roundRobin(n, 3)
	if err := s.Deploy(first); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(30_000)
	before := s.Completed()
	// Move a single executor; the rest keep processing.
	second := append([]int(nil), first...)
	second[3] = (second[3] + 1) % 3
	if err := s.Deploy(second); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(60_000)
	if s.Completed() <= before {
		t.Fatal("pipeline stalled after minimal redeploy")
	}
}

func TestStepWorkloadRaisesThroughput(t *testing.T) {
	top := chainTopology(t)
	cl := cluster.NewUniform(3)
	arr := map[string]workload.ArrivalProcess{
		"spout": workload.StepRate{Base: 100, Factor: 1.5, AtMS: 30_000},
	}
	cfg := DefaultConfig(top, cl, arr, 17)
	cfg.WarmupAmplitude = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(30_000)
	atStep := s.Completed()
	s.RunUntil(60_000)
	afterStep := s.Completed() - atStep
	// Second half has 1.5× the arrival rate.
	ratio := float64(afterStep) / float64(atStep)
	if ratio < 1.3 || ratio > 1.7 {
		t.Fatalf("throughput ratio %.2f, want ≈1.5", ratio)
	}
}

func TestGroupingsRouteCorrectly(t *testing.T) {
	// A topology using all four groupings must still conserve the ack tree
	// (every root completes) — routing bugs would leak pending acks.
	top, err := topology.NewBuilder("groupings").
		AddSpout("s", 2, 0.02, 1, 50).
		AddBolt("f", 3, 0.05, 1, 50).
		AddBolt("g", 2, 0.05, 1, 50).
		AddBolt("all", 2, 0.02, 0, 0).
		Connect("s", "f", topology.Fields).
		Connect("f", "g", topology.Global).
		Connect("g", "all", topology.All).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(t, top, 2, 100, 19)
	if err := s.Deploy(roundRobin(top.NumExecutors(), 2)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(20_000)
	if s.Completed() < 1500 {
		t.Fatalf("only %d completions; expected ≈2000", s.Completed())
	}
	// Drain: after arrivals stop being injected the ack map should not grow
	// unboundedly (bounded in-flight set).
	if len(s.acks) > 500 {
		t.Fatalf("%d tuples stuck in flight", len(s.acks))
	}
}

func TestSelectivityFanOut(t *testing.T) {
	// Selectivity 2 on the spout edge doubles downstream tuples; ack trees
	// must still complete.
	top, err := topology.NewBuilder("fan").
		AddSpout("s", 1, 0.02, 2, 50).
		AddBolt("b", 2, 0.05, 0, 0).
		Connect("s", "b", topology.Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(t, top, 2, 100, 23)
	if err := s.Deploy([]int{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(15_000)
	if s.Completed() < 1000 {
		t.Fatalf("completions %d", s.Completed())
	}
}

func TestZeroRateEmitsNothing(t *testing.T) {
	top := chainTopology(t)
	s := newSim(t, top, 2, 0, 29)
	if err := s.Deploy(roundRobin(top.NumExecutors(), 2)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(10_000)
	if s.Completed() != 0 {
		t.Fatalf("completed %d tuples at zero rate", s.Completed())
	}
	if s.AvgOverLastWindows(5) != 0 {
		t.Fatal("latency should be 0 with no tuples")
	}
}

func TestWindowsAccounting(t *testing.T) {
	top := chainTopology(t)
	s := newSim(t, top, 3, 100, 31)
	if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(35_000)
	wins := s.Windows()
	if len(wins) != 3 {
		t.Fatalf("%d complete windows for 35 s, want 3", len(wins))
	}
	var total int
	for i, w := range wins {
		if w.TimeMS != float64(i+1)*10_000 {
			t.Fatalf("window %d time %v", i, w.TimeMS)
		}
		total += w.Count
	}
	if int64(total) > s.Completed() {
		t.Fatal("window counts exceed completions")
	}
}

func TestEnvImplementsEnvironment(t *testing.T) {
	top := chainTopology(t)
	cl := cluster.NewUniform(3)
	e := &Env{
		Top: top, Cl: cl,
		Arrivals:  map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: 150}},
		Seed:      37,
		HorizonMS: 30_000,
	}
	if e.N() != top.NumExecutors() || e.M() != 3 {
		t.Fatal("N/M wrong")
	}
	w := e.Workload()
	if len(w) != 1 || w[0] != 150 {
		t.Fatalf("workload %v", w)
	}
	a := e.AvgTupleTimeMS(roundRobin(e.N(), 3))
	b := e.AvgTupleTimeMS(roundRobin(e.N(), 3))
	if a != b {
		t.Fatalf("env evaluation not paired/deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("latency %v", a)
	}
}

func TestEnvFreezesStepWorkload(t *testing.T) {
	top := chainTopology(t)
	cl := cluster.NewUniform(3)
	e := &Env{
		Top: top, Cl: cl,
		Arrivals:  map[string]workload.ArrivalProcess{"spout": workload.StepRate{Base: 100, Factor: 1.5, AtMS: 1000}},
		Seed:      41,
		HorizonMS: 20_000,
	}
	e.TimeMS = 500
	before := e.Workload()[0]
	e.TimeMS = 2_000
	after := e.Workload()[0]
	if before != 100 || after != 150 {
		t.Fatalf("workload sampling wrong: %v %v", before, after)
	}
	lBefore := e.AvgTupleTimeMS(roundRobin(e.N(), 3))
	if lBefore <= 0 {
		t.Fatal("frozen-step evaluation failed")
	}
}

func TestCongestionCounterBalanced(t *testing.T) {
	top := chainTopology(t)
	s := newSim(t, top, 3, 200, 43)
	if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(20_000)
	// After a drain period with no further injections the outbound
	// counters must return near zero (they balance increment/decrement).
	for i, m := range s.machines {
		if m.outInFlight < 0 {
			t.Fatalf("machine %d negative in-flight %d", i, m.outInFlight)
		}
		if m.outInFlight > 200 {
			t.Fatalf("machine %d leaked in-flight counter: %d", i, m.outInFlight)
		}
	}
}

func TestRandomAssignmentsAllComplete(t *testing.T) {
	top := chainTopology(t)
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 5; trial++ {
		assign := make([]int, top.NumExecutors())
		for i := range assign {
			assign[i] = rng.Intn(3)
		}
		s := newSim(t, top, 3, 120, int64(trial))
		if err := s.Deploy(assign); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(15_000)
		if s.Completed() == 0 {
			t.Fatalf("assignment %v produced no completions", assign)
		}
	}
}

func BenchmarkSimSecond(b *testing.B) {
	top := chainTopology(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := newSim(b, top, 3, 200, 51)
		if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
			b.Fatal(err)
		}
		s.RunUntil(1_000)
	}
}

func TestTupleConservation(t *testing.T) {
	// Every emitted root is eventually completed, dropped, or still in
	// flight — the ack-tree bookkeeping must not leak or double-count.
	top := chainTopology(t)
	s := newSim(t, top, 3, 200, 61)
	if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(30_000)
	total := s.Completed() + s.Dropped() + int64(s.Outstanding())
	if total != s.Emitted() {
		t.Fatalf("conservation violated: emitted %d, completed %d + dropped %d + outstanding %d = %d",
			s.Emitted(), s.Completed(), s.Dropped(), s.Outstanding(), total)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	top := chainTopology(t)
	s := newSim(t, top, 3, 200, 63)
	if err := s.Deploy(roundRobin(top.NumExecutors(), 3)); err != nil {
		t.Fatal(err)
	}
	if s.LatencyPercentile(50) != 0 {
		t.Fatal("percentile before completions should be 0")
	}
	s.RunUntil(30_000)
	p50 := s.LatencyPercentile(50)
	p99 := s.LatencyPercentile(99)
	avg := s.AvgOverLastWindows(3)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("percentiles implausible: p50=%v p99=%v", p50, p99)
	}
	// Exponential service tails: p99 should clearly exceed the mean.
	if p99 < avg {
		t.Fatalf("p99 %v below mean %v", p99, avg)
	}
}
