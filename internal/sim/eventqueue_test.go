package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the container/heap implementation the typed queue replaced,
// kept here as the property-test oracle.
type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestEventQueueMatchesContainerHeap drives the typed 4-ary heap and the
// container/heap reference with an identical random sequence of interleaved
// pushes and pops (including many tied timestamps, which the seq tiebreaker
// must order) and requires identical pop sequences.
func TestEventQueueMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q eventQueue
	var ref refHeap
	heap.Init(&ref)

	seq := int64(0)
	push := func() {
		// Coarse timestamps force frequent ties.
		ev := event{t: float64(rng.Intn(50)), kind: rng.Intn(5), exec: rng.Intn(100), seq: seq}
		seq++
		q.push(ev)
		heap.Push(&ref, ev)
	}
	popBoth := func() {
		got := q.pop()
		want := heap.Pop(&ref).(event)
		if got != want {
			t.Fatalf("pop mismatch: typed heap returned t=%v seq=%d, reference t=%v seq=%d",
				got.t, got.seq, want.t, want.seq)
		}
	}

	for iter := 0; iter < 20000; iter++ {
		if q.len() == 0 || rng.Float64() < 0.55 {
			push()
		} else {
			popBoth()
		}
		if q.len() != ref.Len() {
			t.Fatalf("length mismatch: typed %d reference %d", q.len(), ref.Len())
		}
	}
	for q.len() > 0 {
		popBoth()
	}
}

// TestEventQueuePopOrderIsSorted pops a batch of random events and checks
// the (t, seq) total order directly.
func TestEventQueuePopOrderIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q eventQueue
	for i := 0; i < 5000; i++ {
		q.push(event{t: float64(rng.Intn(20)), seq: int64(i)})
	}
	prev := q.pop()
	for q.len() > 0 {
		cur := q.pop()
		if cur.t < prev.t || (cur.t == prev.t && cur.seq < prev.seq) {
			t.Fatalf("pop order violated: (t=%v seq=%d) after (t=%v seq=%d)", cur.t, cur.seq, prev.t, prev.seq)
		}
		prev = cur
	}
}
