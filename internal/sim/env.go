package sim

import (
	"repro/internal/cluster"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Env adapts the simulator to the env.Environment contract: every
// AvgTupleTimeMS call runs a fresh, warmed-up simulation of the assignment
// and reports the stabilized average tuple processing time. Using a fixed
// seed per Env makes evaluations paired (identical arrival sequences across
// assignments), which reduces comparison noise exactly like measuring on
// one physical cluster does.
type Env struct {
	Top      *topology.Topology
	Cl       *cluster.Cluster
	Arrivals map[string]workload.ArrivalProcess
	Seed     int64
	// HorizonMS is how long each evaluation simulates (default 60 s).
	HorizonMS float64
	// MeasureWindows is how many trailing 10-s windows are averaged
	// (default 5, per §3.1).
	MeasureWindows int
	// TimeMS is the control-plane clock used to sample Workload() for
	// time-varying arrival processes (Figure 12's step).
	TimeMS float64
}

// N implements env.Environment.
func (e *Env) N() int { return e.Top.NumExecutors() }

// M implements env.Environment.
func (e *Env) M() int { return e.Cl.Size() }

// Workload implements env.Environment: the arrival rate of each spout
// component at the control-plane clock, in topology order.
func (e *Env) Workload() []float64 {
	var w []float64
	for _, sp := range e.Top.Spouts() {
		w = append(w, e.Arrivals[sp.Name].RateAt(e.TimeMS))
	}
	return w
}

// AvgTupleTimeMS implements env.Environment by running a dedicated
// simulation with warm-up transients disabled (the measurement the control
// plane takes after the system re-stabilizes).
func (e *Env) AvgTupleTimeMS(assign []int) float64 {
	horizon := e.HorizonMS
	if horizon <= 0 {
		horizon = 60_000
	}
	k := e.MeasureWindows
	if k <= 0 {
		k = 5
	}
	arr := e.Arrivals
	if e.TimeMS > 0 {
		// Freeze the workload at the control-plane clock so the short
		// measurement sim sees the current rates.
		frozen := map[string]workload.ArrivalProcess{}
		for name, p := range arr {
			frozen[name] = workload.ConstantRate{PerSecond: p.RateAt(e.TimeMS)}
		}
		arr = frozen
	}
	cfg := DefaultConfig(e.Top, e.Cl, arr, e.Seed)
	cfg.WarmupAmplitude = 0
	cfg.MoveOutageMS = 0
	s, err := New(cfg)
	if err != nil {
		panic(err) // Env fields are validated by construction in callers
	}
	if err := s.Deploy(assign); err != nil {
		panic(err)
	}
	s.RunUntil(horizon)
	return s.AvgOverLastWindows(k)
}
