package sim

import (
	"testing"

	"repro/internal/apps"
)

// BenchmarkSimStep measures the per-event cost of the DES hot path on the
// medium continuous-queries system in steady state. The event queue never
// drains (spouts reschedule themselves), so each iteration processes exactly
// one event.
func BenchmarkSimStep(b *testing.B) {
	sys, err := apps.ContinuousQueries(apps.Medium)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(sys.Top, sys.Cl, sys.Arrivals, 1)
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rr := make([]int, sys.Top.NumExecutors())
	for i := range rr {
		rr[i] = i % sys.Cl.Size()
	}
	if err := s.Deploy(rr); err != nil {
		b.Fatal(err)
	}
	// Reach steady state so queue/heap capacities stop growing.
	s.RunUntil(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.step() {
			b.Fatal("event queue drained")
		}
	}
}
