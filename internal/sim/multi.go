package sim

// Multi-instance support: the stepping primitives and shared machine state
// that let an external orchestrator (internal/multisim) advance several
// Sim instances over ONE cluster in global timestamp order. The pattern is
// composition, not inheritance: Run-style loops decompose into
// HasPendingEvents / PeekNextEventTime / ProcessNextEvent, and the
// orchestrator owns the policy of which instance advances next. A Sim
// never reaches into a sibling — the only deliberately shared state is the
// ClusterState below.

import "repro/internal/cluster"

// ClusterState is the machine-level state shared by co-scheduled
// simulations: per-machine busy-level EWMAs, outbound-transfer congestion
// counters, resident-executor counts, and failure windows. Every Sim
// constructed with Config.Shared pointing at the same ClusterState mutates
// the same backing arrays, so CPU contention, network congestion, crowding
// and machine failures are felt across topology boundaries.
//
// The state is only coherent under single-goroutine, global-timestamp-order
// stepping (each machine's EWMA folds elapsed time from its last update;
// out-of-order updates would fold negative intervals). multisim.Multi
// guarantees that order.
type ClusterState struct {
	machines    []machineState
	failedUntil []float64
}

// NewClusterState returns empty shared machine state for a cluster.
func NewClusterState(cl *cluster.Cluster) *ClusterState {
	return &ClusterState{
		machines:    make([]machineState, cl.Size()),
		failedUntil: make([]float64, cl.Size()),
	}
}

// HasPendingEvents reports whether the simulation has any event left to
// process.
func (s *Sim) HasPendingEvents() bool { return s.events.len() > 0 }

// PeekNextEventTime returns the timestamp of the earliest pending event.
// It must only be called when HasPendingEvents is true.
func (s *Sim) PeekNextEventTime() float64 { return s.events.peekTime() }

// ProcessNextEvent processes exactly one event — the earliest pending one —
// and advances the simulation clock to its timestamp. Returns false when
// no events remain. This is the step primitive a shared-clock orchestrator
// drives; RunUntil is the single-instance convenience loop over it.
func (s *Sim) ProcessNextEvent() bool { return s.step() }

// AdvanceTo moves the simulation clock forward to tMS without processing
// any events, finalizing Windows()/AvgOverLastWindows for a horizon the
// orchestrator already drained events up to. Calls with tMS in the past
// are ignored (the clock never moves backwards).
func (s *Sim) AdvanceTo(tMS float64) {
	if tMS > s.now {
		s.now = tMS
	}
}
