// Package sim is a discrete-event simulator of a Storm-like DSDPS: the
// substrate that stands in for the paper's physical 11-node Storm cluster
// (see DESIGN.md §2 for the substitution rationale).
//
// The simulator executes a topology on a cluster under a thread→machine
// assignment and reports the average end-to-end tuple processing time — the
// duration between a tuple's emission by a data source and its ack after
// the whole tuple tree is processed (§2.1). It models the mechanisms that
// make scheduling matter in a real cluster:
//
//   - CPU contention: executors co-located on a machine share its cores; a
//     service slows down when more executors than cores are busy.
//   - Communication tiers: intra-process hand-off is ~μs, inter-machine
//     transfer pays network latency, wire time and congestion.
//   - Queueing: each executor is a FIFO single server; bursty Poisson
//     arrivals build queues at hot executors.
//   - Deployment transients: freshly (re)started executors run slower
//     while caches/JIT warm up, decaying over minutes (the 8–10 minute
//     stabilization visible in Figures 6, 8, 10); moved executors pause
//     briefly during redeployment, producing the spikes of Figure 12.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Config parameterizes a simulation.
type Config struct {
	Topology *topology.Topology
	Cluster  *cluster.Cluster
	// Arrivals gives the aggregate arrival process per spout component
	// name. A spout's rate is divided evenly among its executors.
	Arrivals map[string]workload.ArrivalProcess
	Seed     int64

	// WarmupAmplitude is the extra service-time factor right after an
	// executor (re)starts: service × (1 + A·exp(−age/τ)). Zero disables.
	WarmupAmplitude float64
	// WarmupTauMS is the warm-up decay time constant τ.
	WarmupTauMS float64
	// MoveOutageMS pauses a moved executor after redeployment while its
	// state transfers, building a backlog (Figure 12 spikes).
	MoveOutageMS float64
	// CongestionFactor scales how much concurrent outbound transfers on a
	// machine inflate network delay.
	CongestionFactor float64
	// CrowdFactor models per-resident-executor overhead (context switching,
	// GC, heartbeats): service time is multiplied by
	// 1 + CrowdFactor·(residentExecutors−1). This is the force that keeps
	// "pack everything on one machine" from being degenerate-optimal.
	CrowdFactor float64
	// WindowMS is the metric sampling window (paper: 10-second intervals).
	WindowMS float64
	// NoContention disables the busy/cores CPU slowdown (diagnostic knob
	// for calibration tooling and ablation benches).
	NoContention bool

	// Shared, when non-nil, makes this simulation read and write machine
	// state (busy levels, congestion counters, resident counts, failure
	// windows) through a ClusterState shared with other co-scheduled
	// simulations of the SAME cluster. Co-resident topologies then contend
	// for cores and network for real. Sharing is only coherent when all
	// participating simulations advance in global timestamp order — use
	// multisim.Multi rather than stepping shared sims independently.
	Shared *ClusterState
}

// DefaultConfig fills in the calibration constants used across the
// reproduction (see DESIGN.md §5).
func DefaultConfig(top *topology.Topology, cl *cluster.Cluster, arrivals map[string]workload.ArrivalProcess, seed int64) Config {
	return Config{
		Topology:         top,
		Cluster:          cl,
		Arrivals:         arrivals,
		Seed:             seed,
		WarmupAmplitude:  0.4,
		WarmupTauMS:      150_000,
		MoveOutageMS:     4_000,
		CongestionFactor: 0.25,
		CrowdFactor:      0.002,
		WindowMS:         10_000,
	}
}

// event kinds
const (
	evSpoutEmit = iota // a spout executor generates its next root tuple
	evArrive           // a tuple arrives at an executor's queue
	evFinish           // an executor finishes servicing a tuple
	evResume           // a paused (moved) executor resumes
	evAckCheck         // ack-timeout check for a root tuple
	evFail             // a scheduled machine failure fires (see faults.go)
)

type tupleRef struct {
	root    int64   // root tuple id (ack tree)
	comp    int     // component index the tuple is destined for / processed by
	key     uint64  // fields-grouping key, inherited from the root
	emitMS  float64 // root emission time
	crossed bool    // arrived over the network (pays deserialization CPU)
}

type event struct {
	t    float64
	kind int
	exec int
	tup  tupleRef
	// fromMachine is the transfer source for evArrive events that crossed
	// the network (−1 otherwise); used to release the congestion counter.
	fromMachine int
	seq         int64 // tiebreaker for determinism
}

type execState struct {
	machine int
	// queue is a FIFO ring: live tuples occupy queue[head:]. Popping
	// advances head instead of reslicing, so the backing array is reused
	// rather than "slid" off (which forced a reallocation on nearly every
	// append cycle); see qPush/qPop.
	queue       []tupleRef
	head        int
	busy        bool
	serviceOn   int // machine the in-flight service started on (for busyCount)
	pausedUntil float64
	warmStart   float64 // when this executor last (re)started
}

// qLen returns the number of queued tuples.
func (e *execState) qLen() int { return len(e.queue) - e.head }

// qPush enqueues a tuple, compacting the drained prefix instead of growing
// when the backing array still has dead capacity at the front.
func (e *execState) qPush(tup tupleRef) {
	if len(e.queue) == cap(e.queue) && e.head > 0 {
		n := copy(e.queue, e.queue[e.head:])
		e.queue = e.queue[:n]
		e.head = 0
	}
	e.queue = append(e.queue, tup)
}

// qPop dequeues the head tuple; the queue must be non-empty.
func (e *execState) qPop() tupleRef {
	tup := e.queue[e.head]
	e.head++
	if e.head == len(e.queue) {
		e.queue = e.queue[:0]
		e.head = 0
	}
	return tup
}

// qReset drops all queued tuples.
func (e *execState) qReset() {
	e.queue = e.queue[:0]
	e.head = 0
}

// route is one precomputed downstream edge of a component: everything
// emitChildren needs per tuple, resolved from the topology maps once at
// construction instead of per emission.
type route struct {
	dst      int // destination component index
	grouping topology.Grouping
	par      int    // destination parallelism
	base     int    // first executor index of the destination
	hashMix  uint64 // fields-grouping salt: dst · golden ratio
}

type machineState struct {
	busyCount   int // executors currently in service
	outInFlight int // tuples currently in outbound network transfer
	resident    int // executors assigned to this machine

	// busyAvg is an exponentially-weighted time average of busyCount,
	// the signal CPU contention is computed from. Using the average
	// rather than the instantaneous count models processor sharing
	// without the burst-feedback over-punishment an instantaneous
	// multiplier causes.
	busyAvg    float64
	lastChange float64
}

// busyTauMS is the time constant of the busy-level EWMA.
const busyTauMS = 100.0

type ackState struct {
	pending int
	emitMS  float64
	// failed marks trees that lost tuples to a machine failure and can
	// no longer complete.
	failed bool
}

// WindowSample is one metrics window: the mean end-to-end latency of tuples
// completed within [TimeMS−window, TimeMS).
type WindowSample struct {
	TimeMS float64
	AvgMS  float64
	Count  int
}

// Sim is a running simulation. It is not safe for concurrent use.
type Sim struct {
	cfg   Config
	rng   *rand.Rand
	top   *topology.Topology
	cl    *cluster.Cluster
	comps []*topology.Component
	cidx  map[string]int // component name -> index
	outs  [][]topology.Edge
	base  []int // component index -> first executor index
	// routes[c] holds the precomputed downstream edges of component c, the
	// hot-path replacement for the cidx/outs map lookups.
	routes [][]route

	execs    []execState
	machines []machineState
	events   eventQueue
	seq      int64
	now      float64

	acks map[int64]*ackState
	// ackFree is a free list of ackState records: root tuples are created
	// and retired constantly, and recycling the records keeps the steady
	// state of the hot loop allocation-free.
	ackFree   []*ackState
	nextRoot  int64
	completed int64

	// Latency reservoir sample for percentile reporting.
	reservoir []float64
	resSeen   int64

	// Fault tolerance (see faults.go).
	ackTimeoutMS float64
	replays      int64
	dropped      int64
	failedUntil  []float64

	// Per-window accumulation.
	winSum   []float64
	winCount []int

	// Diagnostics.
	busySum     float64
	busySamples int64
}

// New validates the configuration and builds a simulator. Executors start
// unassigned; call Deploy before Run.
func New(cfg Config) (*Sim, error) {
	if cfg.Topology == nil || cfg.Cluster == nil {
		return nil, fmt.Errorf("sim: topology and cluster are required")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.WindowMS <= 0 {
		cfg.WindowMS = 10_000
	}
	for _, sp := range cfg.Topology.Spouts() {
		if _, ok := cfg.Arrivals[sp.Name]; !ok {
			return nil, fmt.Errorf("sim: no arrival process for spout %q", sp.Name)
		}
	}
	s := &Sim{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		top:  cfg.Topology,
		cl:   cfg.Cluster,
		cidx: map[string]int{},
		acks: map[int64]*ackState{},
	}
	for i, c := range s.top.Components {
		s.comps = append(s.comps, c)
		s.cidx[c.Name] = i
		s.outs = append(s.outs, s.top.Out(c.Name))
		lo, _ := s.top.ExecutorRange(c.Name)
		s.base = append(s.base, lo)
	}
	// Resolve every downstream edge once: emitChildren runs per processed
	// tuple and must not chase name→index maps there.
	s.routes = make([][]route, len(s.comps))
	for i := range s.comps {
		for _, edge := range s.outs[i] {
			dst := s.cidx[edge.To]
			s.routes[i] = append(s.routes[i], route{
				dst:      dst,
				grouping: edge.Grouping,
				par:      s.comps[dst].Parallelism,
				base:     s.base[dst],
				hashMix:  uint64(dst) * 0x9e3779b97f4a7c15,
			})
		}
	}
	s.execs = make([]execState, s.top.NumExecutors())
	if cfg.Shared != nil {
		if len(cfg.Shared.machines) != s.cl.Size() {
			return nil, fmt.Errorf("sim: shared cluster state has %d machines, cluster has %d",
				len(cfg.Shared.machines), s.cl.Size())
		}
		s.machines = cfg.Shared.machines
		s.failedUntil = cfg.Shared.failedUntil
	} else {
		s.machines = make([]machineState, s.cl.Size())
		s.failedUntil = make([]float64, s.cl.Size())
	}
	for i := range s.execs {
		s.execs[i].machine = -1
	}
	return s, nil
}

// Now returns the current simulation time in milliseconds.
func (s *Sim) Now() float64 { return s.now }

// Completed returns the number of fully acked root tuples so far.
func (s *Sim) Completed() int64 { return s.completed }

// Deploy installs an assignment. On first call every executor starts cold
// and spout emission begins; on later calls only executors whose machine
// changed are restarted (minimal-impact redeployment, §3.1): they pause for
// MoveOutageMS and restart their warm-up clock, while unmoved executors are
// untouched.
func (s *Sim) Deploy(assign []int) error {
	if len(assign) != len(s.execs) {
		return fmt.Errorf("sim: assignment covers %d executors, want %d", len(assign), len(s.execs))
	}
	for i, m := range assign {
		if m < 0 || m >= s.cl.Size() {
			return fmt.Errorf("sim: executor %d assigned to invalid machine %d", i, m)
		}
	}
	first := s.execs[0].machine == -1
	for i, m := range assign {
		e := &s.execs[i]
		if first {
			e.machine = m
			e.warmStart = s.now
			s.machines[m].resident++
			continue
		}
		if e.machine != m {
			s.machines[e.machine].resident--
			s.machines[m].resident++
			e.machine = m
			e.warmStart = s.now
			e.pausedUntil = s.now + s.cfg.MoveOutageMS
			s.push(event{t: e.pausedUntil, kind: evResume, exec: i})
		}
	}
	if first {
		// Start spout emission loops, one per spout executor.
		for _, sp := range s.top.Spouts() {
			lo, hi := s.top.ExecutorRange(sp.Name)
			for x := lo; x < hi; x++ {
				s.scheduleNextEmit(x, s.cidx[sp.Name])
			}
		}
	}
	return nil
}

func (s *Sim) push(ev event) {
	if ev.kind != evArrive {
		ev.fromMachine = -1
	}
	ev.seq = s.seq
	s.seq++
	s.events.push(ev)
}

// newAck takes an ackState from the free list (or allocates one) and
// initializes it for a freshly emitted root tuple.
func (s *Sim) newAck(emitMS float64) *ackState {
	var a *ackState
	if n := len(s.ackFree); n > 0 {
		a = s.ackFree[n-1]
		s.ackFree = s.ackFree[:n-1]
	} else {
		a = &ackState{}
	}
	a.pending = 1
	a.emitMS = emitMS
	a.failed = false
	return a
}

// freeAck retires a root tuple's ack record back to the free list.
func (s *Sim) freeAck(root int64, a *ackState) {
	delete(s.acks, root)
	s.ackFree = append(s.ackFree, a)
}

// perExecRate returns the arrival rate (tuples/s) for one executor of the
// spout component at time t.
func (s *Sim) perExecRate(comp int, t float64) float64 {
	c := s.comps[comp]
	p := s.cfg.Arrivals[c.Name]
	return p.RateAt(t) / float64(c.Parallelism)
}

func (s *Sim) scheduleNextEmit(exec, comp int) {
	rate := s.perExecRate(comp, s.now)
	if rate <= 0 {
		// Re-poll for rate changes in a second.
		s.push(event{t: s.now + 1000, kind: evSpoutEmit, exec: exec, tup: tupleRef{comp: comp}})
		return
	}
	gap := s.rng.ExpFloat64() / rate * 1000
	s.push(event{t: s.now + gap, kind: evSpoutEmit, exec: exec, tup: tupleRef{comp: comp}})
}

// warmFactor returns the transient service inflation for an executor.
func (s *Sim) warmFactor(e *execState) float64 {
	if s.cfg.WarmupAmplitude <= 0 || s.cfg.WarmupTauMS <= 0 {
		return 1
	}
	age := s.now - e.warmStart
	return 1 + s.cfg.WarmupAmplitude*math.Exp(-age/s.cfg.WarmupTauMS)
}

// serviceMS samples the service duration for a tuple at an executor,
// including deserialization of network arrivals, CPU contention and
// warm-up.
func (s *Sim) serviceMS(exec int, tup tupleRef) float64 {
	e := &s.execs[exec]
	m := s.cl.Machines[e.machine]
	mean := s.comps[tup.comp].ServiceMeanMS
	if tup.crossed {
		mean += s.cl.SerializeMS
	}
	base := s.rng.ExpFloat64() * mean
	// Processor contention: when more executors are busy than cores, each
	// runs proportionally slower.
	s.updateBusy(e.machine, 0)
	busyAvg := s.machines[e.machine].busyAvg
	s.busySum += busyAvg
	s.busySamples++
	contention := 1.0
	if busyAvg > float64(m.Cores) && !s.cfg.NoContention {
		contention = busyAvg / float64(m.Cores)
	}
	if s.cfg.CrowdFactor > 0 {
		contention *= 1 + s.cfg.CrowdFactor*float64(s.machines[e.machine].resident-1)
	}
	return base * contention * s.warmFactor(e) / m.SpeedFactor
}

// transferMS computes the tuple transfer delay between machines, including
// congestion from concurrent outbound transfers at the source.
func (s *Sim) transferMS(src, dst int, bytes float64) float64 {
	d := s.cl.TransferMS(src, dst, bytes)
	if src != dst && s.cfg.CongestionFactor > 0 {
		inflight := float64(s.machines[src].outInFlight)
		d *= 1 + s.cfg.CongestionFactor*inflight/4.0
	}
	return d
}

// tryStartService begins servicing the head-of-queue tuple if the executor
// is idle, unpaused and has work.
func (s *Sim) tryStartService(exec int) {
	e := &s.execs[exec]
	if e.busy || e.qLen() == 0 || s.now < e.pausedUntil {
		return
	}
	tup := e.qPop()
	e.busy = true
	e.serviceOn = e.machine
	s.updateBusy(e.machine, +1)
	dur := s.serviceMS(exec, tup)
	s.push(event{t: s.now + dur, kind: evFinish, exec: exec, tup: tup})
}

// emitChildren sends downstream tuples after comp processed tup, updating
// the ack tree. Returns the number of children emitted. Routing runs
// entirely off the precomputed route table: no map lookups and no per-tuple
// task-list allocations (the All grouping iterates the destination range
// directly).
func (s *Sim) emitChildren(exec int, tup tupleRef) int {
	comp := s.comps[tup.comp]
	routes := s.routes[tup.comp]
	if len(routes) == 0 || comp.Selectivity <= 0 {
		return 0
	}
	ack, ok := s.acks[tup.root]
	if !ok {
		return 0 // orphaned tree: no point fanning out further work
	}
	children := 0
	srcMachine := s.execs[exec].machine
	for ri := range routes {
		r := &routes[ri]
		// Number of tuples emitted on this edge: selectivity with
		// stochastic rounding.
		count := int(comp.Selectivity)
		if frac := comp.Selectivity - float64(count); frac > 0 && s.rng.Float64() < frac {
			count++
		}
		for c := 0; c < count; c++ {
			switch r.grouping {
			case topology.Shuffle:
				s.sendChild(r, s.rng.Intn(r.par), tup, srcMachine, comp.TupleBytes, ack)
				children++
			case topology.Fields:
				mix := tup.key ^ r.hashMix
				mix ^= mix >> 33
				mix *= 0xff51afd7ed558ccd
				mix ^= mix >> 33
				s.sendChild(r, int(mix%uint64(r.par)), tup, srcMachine, comp.TupleBytes, ack)
				children++
			case topology.Global:
				s.sendChild(r, 0, tup, srcMachine, comp.TupleBytes, ack)
				children++
			case topology.All:
				for task := 0; task < r.par; task++ {
					s.sendChild(r, task, tup, srcMachine, comp.TupleBytes, ack)
					children++
				}
			}
		}
	}
	return children
}

// sendChild schedules one downstream tuple arrival on route r at the given
// destination task.
func (s *Sim) sendChild(r *route, task int, tup tupleRef, srcMachine int, bytes float64, ack *ackState) {
	dstExec := r.base + task
	dstMachine := s.execs[dstExec].machine
	delay := s.transferMS(srcMachine, dstMachine, bytes)
	from := -1
	if srcMachine != dstMachine {
		s.machines[srcMachine].outInFlight++
		from = srcMachine
	}
	child := tupleRef{root: tup.root, comp: r.dst, key: tup.key, emitMS: tup.emitMS, crossed: from >= 0}
	s.push(event{t: s.now + delay, kind: evArrive, exec: dstExec, tup: child, fromMachine: from})
	ack.pending++
}

// reservoirCap bounds the memory used by percentile tracking.
const reservoirCap = 4096

// recordCompletion logs an acked root tuple's end-to-end latency.
func (s *Sim) recordCompletion(emitMS float64) {
	lat := s.now - emitMS
	// Vitter's algorithm R keeps a uniform sample of all completions.
	s.resSeen++
	if len(s.reservoir) < reservoirCap {
		s.reservoir = append(s.reservoir, lat)
	} else if j := s.rng.Int63n(s.resSeen); j < reservoirCap {
		s.reservoir[j] = lat
	}
	w := int(s.now / s.cfg.WindowMS)
	for len(s.winSum) <= w {
		s.winSum = append(s.winSum, 0)
		s.winCount = append(s.winCount, 0)
	}
	s.winSum[w] += lat
	s.winCount[w]++
	s.completed++
}

// step processes one event. Returns false when no events remain.
func (s *Sim) step() bool {
	if s.events.len() == 0 {
		return false
	}
	ev := s.events.pop()
	s.now = ev.t
	switch ev.kind {
	case evSpoutEmit:
		comp := ev.tup.comp
		// When the arrival rate is zero this event is only a rate re-poll;
		// emit nothing.
		if s.perExecRate(comp, s.now) > 0 {
			root := s.nextRoot
			s.nextRoot++
			tup := tupleRef{root: root, comp: comp, key: s.rng.Uint64(), emitMS: s.now}
			s.acks[root] = s.newAck(s.now)
			if s.ackTimeoutMS > 0 {
				s.push(event{t: s.now + s.ackTimeoutMS, kind: evAckCheck, exec: ev.exec,
					tup: tupleRef{root: root, comp: comp}})
			}
			s.execs[ev.exec].qPush(tup)
			s.tryStartService(ev.exec)
		}
		s.scheduleNextEmit(ev.exec, comp)
	case evArrive:
		if ev.fromMachine >= 0 {
			// The tuple left the network; release the congestion counter.
			s.machines[ev.fromMachine].outInFlight--
		}
		s.execs[ev.exec].qPush(ev.tup)
		s.tryStartService(ev.exec)
	case evFinish:
		e := &s.execs[ev.exec]
		e.busy = false
		s.updateBusy(e.serviceOn, -1)
		if s.failedUntil[e.serviceOn] > s.now {
			// The machine failed mid-service; the result is lost.
			s.orphanTuple(ev.tup)
			s.tryStartService(ev.exec)
			break
		}
		s.emitChildren(ev.exec, ev.tup)
		if ack, ok := s.acks[ev.tup.root]; ok {
			ack.pending--
			if ack.pending == 0 {
				if !ack.failed {
					s.recordCompletion(ack.emitMS)
					s.freeAck(ev.tup.root, ack)
				} else if s.ackTimeoutMS <= 0 {
					// Failed tree fully accounted for and no replay
					// mechanism: the root is lost.
					s.freeAck(ev.tup.root, ack)
					s.dropped++
				}
			}
		}
		s.tryStartService(ev.exec)
	case evResume:
		s.tryStartService(ev.exec)
	case evAckCheck:
		s.checkAck(ev.tup.root, ev.exec, ev.tup.comp)
	case evFail:
		// Declaratively scheduled machine failure; ev.exec carries the
		// machine index and ev.tup.emitMS the outage duration.
		s.failMachine(ev.exec, ev.tup.emitMS)
	}
	return true
}

// RunUntil advances the simulation to time tMS (milliseconds).
func (s *Sim) RunUntil(tMS float64) {
	for s.events.len() > 0 && s.events.peekTime() <= tMS {
		s.step()
	}
	if s.now < tMS {
		s.now = tMS
	}
}

// Windows returns the completed metric windows up to the current time:
// window i covers [i·WindowMS, (i+1)·WindowMS). Windows with no completed
// tuples report AvgMS = 0 and Count = 0.
func (s *Sim) Windows() []WindowSample {
	n := int(s.now / s.cfg.WindowMS)
	if n > len(s.winSum) {
		n = len(s.winSum)
	}
	out := make([]WindowSample, 0, n)
	for i := 0; i < n; i++ {
		ws := WindowSample{TimeMS: float64(i+1) * s.cfg.WindowMS, Count: s.winCount[i]}
		if ws.Count > 0 {
			ws.AvgMS = s.winSum[i] / float64(ws.Count)
		}
		out = append(out, ws)
	}
	return out
}

// Emitted returns the number of root tuples emitted so far, including
// replays.
func (s *Sim) Emitted() int64 { return s.nextRoot }

// Outstanding returns the number of root tuples still in flight.
func (s *Sim) Outstanding() int { return len(s.acks) }

// LatencyPercentile returns the p-th percentile (p in [0,100]) of
// end-to-end tuple latency over a uniform reservoir sample of all
// completions. Returns 0 before any completion.
func (s *Sim) LatencyPercentile(p float64) float64 {
	if len(s.reservoir) == 0 {
		return 0
	}
	return stats.Percentile(s.reservoir, p)
}

// AvgOverLastWindows returns the tuple-weighted mean latency across the
// last k completed windows (the paper's measurement: "the average of 5
// consecutive measurements with a 10-second interval", §3.1). Returns 0 if
// no tuples completed.
func (s *Sim) AvgOverLastWindows(k int) float64 {
	wins := s.Windows()
	if len(wins) == 0 {
		return 0
	}
	if k > len(wins) {
		k = len(wins)
	}
	var sum float64
	var count int
	for _, w := range wins[len(wins)-k:] {
		sum += w.AvgMS * float64(w.Count)
		count += w.Count
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// updateBusy folds the elapsed interval into the machine's busy-level EWMA
// and applies delta to the instantaneous count.
func (s *Sim) updateBusy(m int, delta int) {
	ms := &s.machines[m]
	if dt := s.now - ms.lastChange; dt > 0 {
		f := math.Exp(-dt / busyTauMS)
		ms.busyAvg = ms.busyAvg*f + float64(ms.busyCount)*(1-f)
		ms.lastChange = s.now
	}
	ms.busyCount += delta
}

// AvgBusySample reports the mean busy-level EWMA observed at service
// dispatch since the start of the run (diagnostic).
func (s *Sim) AvgBusySample() float64 {
	if s.busySamples == 0 {
		return 0
	}
	return s.busySum / float64(s.busySamples)
}
