package sim

import "fmt"

// Fault-tolerance mechanics of §2.1: "if a message ID is marked failure due
// to acknowledgment timeout, data processing will be recovered by replaying
// the corresponding data source tuple", and "the master monitors heartbeat
// signals from all worker processes periodically [and] re-schedules them
// when it discovers a failure."
//
// The simulator reproduces both: an optional ack timeout that replays root
// tuples whose trees did not complete in time, and machine-failure
// injection that drops in-flight work on a machine until it recovers.

// EnableAckTimeout turns on tuple-replay fault tolerance: any root tuple
// not fully acked within timeoutMS of its (re-)emission is marked failed
// and re-emitted at its originating spout executor. Latency for a replayed
// tuple is measured from the replay emission, matching how Storm reports
// complete latency for re-played tuples. Must be called before Deploy.
func (s *Sim) EnableAckTimeout(timeoutMS float64) {
	s.ackTimeoutMS = timeoutMS
}

// Replayed returns the number of root-tuple replays triggered by ack
// timeouts or machine failures.
func (s *Sim) Replayed() int64 { return s.replays }

// FailMachine injects a machine failure at the current simulation time: the
// machine drops every queued and in-flight tuple (their ack trees will time
// out and replay if ack timeouts are enabled) and its executors stay down
// for downMS. This models a worker-process crash detected by the master's
// heartbeat monitoring.
func (s *Sim) FailMachine(machine int, downMS float64) {
	s.failMachine(machine, downMS)
}

// ScheduleFailure declares a machine failure ahead of time: at simulated
// time atMS the machine fails exactly as FailMachine would at that moment.
// This is what scenario specs use — faults become part of the seeded event
// schedule instead of requiring an imperative call between RunUntil
// chunks (which could only land on chunk boundaries). atMS must not be in
// the past.
func (s *Sim) ScheduleFailure(machine int, atMS, downMS float64) error {
	if machine < 0 || machine >= s.cl.Size() {
		return fmt.Errorf("sim: ScheduleFailure: invalid machine %d (cluster has %d)", machine, s.cl.Size())
	}
	if atMS < s.now {
		return fmt.Errorf("sim: ScheduleFailure: time %.0fms already passed (now %.0fms)", atMS, s.now)
	}
	if downMS < 0 {
		return fmt.Errorf("sim: ScheduleFailure: negative outage %.0fms", downMS)
	}
	// The event struct is reused unchanged: exec carries the machine index
	// and tup.emitMS the outage duration (see the evFail case in step).
	s.push(event{t: atMS, kind: evFail, exec: machine, tup: tupleRef{emitMS: downMS}})
	return nil
}

// failMachine is the shared implementation behind FailMachine and evFail:
// mark the machine down until now+downMS, orphan this topology's queued
// tuples on it, and pause its executors. In-flight services are handled at
// their evFinish (the failedUntil check there discards results produced on
// a machine that failed mid-service). Under shared ClusterState the
// failedUntil write is idempotent across co-resident topologies — each
// schedules the same failure and orphans its own tuples.
func (s *Sim) failMachine(machine int, downMS float64) {
	until := s.now + downMS
	if until > s.failedUntil[machine] {
		s.failedUntil[machine] = until
	}
	for i := range s.execs {
		e := &s.execs[i]
		if e.machine != machine {
			continue
		}
		// Queued tuples are lost; their trees can no longer complete.
		for _, tup := range e.queue[e.head:] {
			s.orphanTuple(tup)
		}
		e.qReset()
		if until > e.pausedUntil {
			e.pausedUntil = until
		}
		s.push(event{t: until, kind: evResume, exec: i})
	}
}

// orphanTuple removes a tuple's contribution from its ack tree and marks
// the tree failed. With ack timeouts enabled the entry is kept so the
// deadline check replays the root; without them a fully-accounted failed
// tree is dropped.
func (s *Sim) orphanTuple(tup tupleRef) {
	ack, ok := s.acks[tup.root]
	if !ok {
		return
	}
	ack.pending--
	ack.failed = true
	if ack.pending <= 0 && s.ackTimeoutMS <= 0 {
		s.freeAck(tup.root, ack)
		s.dropped++
	}
}

// checkAck handles an evAckCheck event: any root still outstanding (slow or
// failed) at its deadline is replayed at its spout executor; completed
// roots have already left the ack table.
func (s *Sim) checkAck(root int64, spoutExec, comp int) {
	ack, ok := s.acks[root]
	if !ok {
		return // completed in time
	}
	s.freeAck(root, ack)
	s.replayRoot(spoutExec, comp)
}

// replayRoot re-emits a fresh root tuple at the spout executor.
func (s *Sim) replayRoot(spoutExec, comp int) {
	s.replays++
	root := s.nextRoot
	s.nextRoot++
	tup := tupleRef{root: root, comp: comp, key: s.rng.Uint64(), emitMS: s.now}
	s.acks[root] = s.newAck(s.now)
	if s.ackTimeoutMS > 0 {
		s.push(event{t: s.now + s.ackTimeoutMS, kind: evAckCheck, exec: spoutExec, tup: tupleRef{root: root, comp: comp}})
	}
	s.execs[spoutExec].qPush(tup)
	s.tryStartService(spoutExec)
}

// Dropped returns roots lost to failures with ack timeouts disabled.
func (s *Sim) Dropped() int64 { return s.dropped }
