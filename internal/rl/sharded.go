package rl

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// ShardedReplay is a replay buffer sharded by contributor key (the serving
// daemon uses one shard per session token). Sharding serves two goals:
//
//   - Determinism: transitions within a shard arrive in their contributor's
//     own order, which is deterministic even when many sessions feed the
//     buffer concurrently; interleaving across contributors never matters
//     because sampling walks shards in sorted key order. Two runs with the
//     same per-contributor streams therefore sample identical batches from
//     identical RNG states.
//   - Lifecycle: a contributor's transitions can be dropped as one unit
//     when its session is evicted.
//
// All methods are safe for concurrent use; Add from many goroutines may
// interleave with Sample from a trainer goroutine.
type ShardedReplay struct {
	mu       sync.Mutex
	shardCap int
	shards   map[string]*replayShard
	keys     []string // sorted shard keys; the deterministic walk order
	count    int      // total stored transitions

	// Sample scratch: cumulative shard lengths and the matching buffers,
	// rebuilt once per Sample so each draw is a binary search instead of
	// an O(shards) key walk with a map lookup per step.
	cum  []int
	bufs []*ReplayBuffer
}

// replayShard is one contributor's ring buffer plus the monotone count of
// transitions ever added to it. The count is the shard's write sequence:
// the durability layer journals it with each transition so crash recovery
// can tell a transition the snapshot already holds from one that must be
// re-applied (see AddRecovered).
type replayShard struct {
	buf   *ReplayBuffer
	added uint64
}

// NewShardedReplay returns an empty sharded buffer whose per-key shards
// hold at most shardCap transitions each (oldest evicted first).
func NewShardedReplay(shardCap int) *ShardedReplay {
	if shardCap <= 0 {
		shardCap = 1
	}
	return &ShardedReplay{shardCap: shardCap, shards: map[string]*replayShard{}}
}

// shard returns key's shard, creating it (and its sorted-keys slot) on
// first use. Callers hold s.mu.
func (s *ShardedReplay) shard(key string) *replayShard {
	sh, ok := s.shards[key]
	if !ok {
		sh = &replayShard{buf: NewReplayBuffer(s.shardCap)}
		s.shards[key] = sh
		i := sort.SearchStrings(s.keys, key)
		s.keys = append(s.keys, "")
		copy(s.keys[i+1:], s.keys[i:])
		s.keys[i] = key
	}
	return sh
}

// Add stores t in key's shard, creating the shard on first use, and
// returns the shard's new write sequence (the count of transitions ever
// added to it, 1-based).
func (s *ShardedReplay) Add(key string, t Transition) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shard(key)
	if sh.buf.Len() == sh.buf.Cap() {
		s.count-- // Add below evicts the oldest
	}
	sh.buf.Add(t)
	sh.added++
	s.count++
	return sh.added
}

// AddRecovered applies a journaled transition during crash recovery: it
// stores t only if seq is newer than the shard's current write sequence
// (the snapshot the journal replays over may already contain it), and
// advances the sequence to seq either way. It returns whether t was
// stored. Gaps (seq jumping more than one ahead, from journal records
// dropped under backpressure) are tolerated; the sequence tracks the
// journal's numbering so later records still compare correctly.
func (s *ShardedReplay) AddRecovered(key string, seq uint64, t Transition) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shard(key)
	if seq <= sh.added {
		return false
	}
	if sh.buf.Len() == sh.buf.Cap() {
		s.count--
	}
	sh.buf.Add(t)
	sh.added = seq
	s.count++
	return true
}

// Seq returns key's current write sequence (0 for an unknown shard).
func (s *ShardedReplay) Seq(key string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh, ok := s.shards[key]; ok {
		return sh.added
	}
	return 0
}

// Remove drops key's shard and all its transitions.
func (s *ShardedReplay) Remove(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.shards[key]
	if !ok {
		return
	}
	s.count -= sh.buf.Len()
	delete(s.shards, key)
	i := sort.SearchStrings(s.keys, key)
	s.keys = append(s.keys[:i], s.keys[i+1:]...)
}

// Len returns the total number of stored transitions.
func (s *ShardedReplay) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Shards returns the number of live shards.
func (s *ShardedReplay) Shards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// ShardExport is one shard's full contents in oldest→newest order, plus
// its write sequence — the unit of replay-buffer persistence.
type ShardExport struct {
	Key   string
	Added uint64
	Trans []Transition
}

// Export captures every shard in sorted-key order, transitions
// oldest→newest. The returned transitions share backing arrays with the
// buffer (stored transitions are immutable), so Export is cheap enough to
// run inside a snapshot pause.
func (s *ShardedReplay) Export() []ShardExport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ShardExport, 0, len(s.keys))
	for _, key := range s.keys {
		sh := s.shards[key]
		n := sh.buf.Len()
		ts := make([]Transition, n)
		for i := 0; i < n; i++ {
			ts[i] = sh.buf.At(ringIndex(sh.buf, i))
		}
		out = append(out, ShardExport{Key: key, Added: sh.added, Trans: ts})
	}
	return out
}

// Import replaces the buffer's contents with previously exported shards.
// Shards longer than the configured per-shard capacity keep only their
// newest transitions (the ring's normal eviction rule). Import walks the
// input in order, so two imports of the same export build bitwise
// identical state.
func (s *ShardedReplay) Import(shards []ShardExport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shards = make(map[string]*replayShard, len(shards))
	s.keys = s.keys[:0]
	s.count = 0
	for _, se := range shards {
		sh := s.shard(se.Key)
		for _, t := range se.Trans {
			if sh.buf.Len() == sh.buf.Cap() {
				s.count--
			}
			sh.buf.Add(t)
			s.count++
		}
		sh.added = se.Added
	}
}

// Checksum returns an FNV-64a digest of the buffer's full logical state:
// every shard in sorted key order with its write sequence and transitions
// oldest→newest, each float bit-exact. Two buffers holding the same
// transitions in the same shard order checksum equal regardless of how
// they got there (live adds, recovery replay, or an Import of an Export) —
// the failover harness uses it to assert a promoted follower's replay is
// bitwise the leader's last shipped barrier.
func (s *ShardedReplay) Checksum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := fnv.New64a()
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, _ = h.Write(scratch[:]) // hash.Hash writes cannot fail
	}
	f64s := func(vs []float64) {
		u64(uint64(len(vs)))
		for _, v := range vs {
			u64(math.Float64bits(v))
		}
	}
	u64(uint64(len(s.keys)))
	for _, key := range s.keys {
		_, _ = io.WriteString(h, key)
		_, _ = h.Write([]byte{0})
		sh := s.shards[key]
		u64(sh.added)
		n := sh.buf.Len()
		u64(uint64(n))
		for i := 0; i < n; i++ {
			t := sh.buf.At(ringIndex(sh.buf, i))
			f64s(t.State)
			f64s(t.Action)
			u64(math.Float64bits(t.Reward))
			f64s(t.NextState)
		}
	}
	return h.Sum64()
}

// Sample draws n transitions uniformly at random (with replacement) across
// all shards into dst, which is resized as needed and returned. The draw
// treats the shards, walked in sorted key order, as one concatenated
// buffer, so for a fixed RNG state and fixed shard contents the sampled
// batch is independent of the goroutine interleaving that filled the
// shards. Returns dst[:0] when the buffer is empty.
func (s *ShardedReplay) Sample(rng *rand.Rand, n int, dst []Transition) []Transition {
	dst = dst[:0]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return dst
	}
	// One pass over the sorted keys builds the cumulative-length table;
	// each draw then binary-searches it. Same idx→shard mapping as a
	// linear walk, so sampled batches are unchanged.
	s.cum = s.cum[:0]
	s.bufs = s.bufs[:0]
	total := 0
	for _, key := range s.keys {
		b := s.shards[key].buf
		total += b.Len()
		s.cum = append(s.cum, total)
		s.bufs = append(s.bufs, b)
	}
	for i := 0; i < n; i++ {
		idx := rng.Intn(s.count)
		j := sort.SearchInts(s.cum, idx+1)
		b := s.bufs[j]
		local := idx - (s.cum[j] - b.Len())
		dst = append(dst, b.At(ringIndex(b, local)))
	}
	return dst
}

// ringIndex maps a logical in-order index (0 = oldest) to the ring
// position used by ReplayBuffer.At. The mapping keeps sampling stable
// under eviction: index i always means "the i-th oldest transition".
func ringIndex(b *ReplayBuffer, i int) int {
	if !b.full {
		return i
	}
	return (b.next + i) % b.Cap()
}
