package rl

import (
	"math/rand"
	"sort"
	"sync"
)

// ShardedReplay is a replay buffer sharded by contributor key (the serving
// daemon uses one shard per session token). Sharding serves two goals:
//
//   - Determinism: transitions within a shard arrive in their contributor's
//     own order, which is deterministic even when many sessions feed the
//     buffer concurrently; interleaving across contributors never matters
//     because sampling walks shards in sorted key order. Two runs with the
//     same per-contributor streams therefore sample identical batches from
//     identical RNG states.
//   - Lifecycle: a contributor's transitions can be dropped as one unit
//     when its session is evicted.
//
// All methods are safe for concurrent use; Add from many goroutines may
// interleave with Sample from a trainer goroutine.
type ShardedReplay struct {
	mu       sync.Mutex
	shardCap int
	shards   map[string]*ReplayBuffer
	keys     []string // sorted shard keys; the deterministic walk order
	count    int      // total stored transitions

	// Sample scratch: cumulative shard lengths and the matching buffers,
	// rebuilt once per Sample so each draw is a binary search instead of
	// an O(shards) key walk with a map lookup per step.
	cum  []int
	bufs []*ReplayBuffer
}

// NewShardedReplay returns an empty sharded buffer whose per-key shards
// hold at most shardCap transitions each (oldest evicted first).
func NewShardedReplay(shardCap int) *ShardedReplay {
	if shardCap <= 0 {
		shardCap = 1
	}
	return &ShardedReplay{shardCap: shardCap, shards: map[string]*ReplayBuffer{}}
}

// Add stores t in key's shard, creating the shard on first use.
func (s *ShardedReplay) Add(key string, t Transition) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.shards[key]
	if !ok {
		b = NewReplayBuffer(s.shardCap)
		s.shards[key] = b
		i := sort.SearchStrings(s.keys, key)
		s.keys = append(s.keys, "")
		copy(s.keys[i+1:], s.keys[i:])
		s.keys[i] = key
	}
	if b.Len() == b.Cap() {
		s.count-- // Add below evicts the oldest
	}
	b.Add(t)
	s.count++
}

// Remove drops key's shard and all its transitions.
func (s *ShardedReplay) Remove(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.shards[key]
	if !ok {
		return
	}
	s.count -= b.Len()
	delete(s.shards, key)
	i := sort.SearchStrings(s.keys, key)
	s.keys = append(s.keys[:i], s.keys[i+1:]...)
}

// Len returns the total number of stored transitions.
func (s *ShardedReplay) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Shards returns the number of live shards.
func (s *ShardedReplay) Shards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// Sample draws n transitions uniformly at random (with replacement) across
// all shards into dst, which is resized as needed and returned. The draw
// treats the shards, walked in sorted key order, as one concatenated
// buffer, so for a fixed RNG state and fixed shard contents the sampled
// batch is independent of the goroutine interleaving that filled the
// shards. Returns dst[:0] when the buffer is empty.
func (s *ShardedReplay) Sample(rng *rand.Rand, n int, dst []Transition) []Transition {
	dst = dst[:0]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return dst
	}
	// One pass over the sorted keys builds the cumulative-length table;
	// each draw then binary-searches it. Same idx→shard mapping as a
	// linear walk, so sampled batches are unchanged.
	s.cum = s.cum[:0]
	s.bufs = s.bufs[:0]
	total := 0
	for _, key := range s.keys {
		b := s.shards[key]
		total += b.Len()
		s.cum = append(s.cum, total)
		s.bufs = append(s.bufs, b)
	}
	for i := 0; i < n; i++ {
		idx := rng.Intn(s.count)
		j := sort.SearchInts(s.cum, idx+1)
		b := s.bufs[j]
		local := idx - (s.cum[j] - b.Len())
		dst = append(dst, b.At(ringIndex(b, local)))
	}
	return dst
}

// ringIndex maps a logical in-order index (0 = oldest) to the ring
// position used by ReplayBuffer.At. The mapping keeps sampling stable
// under eviction: index i always means "the i-th oldest transition".
func ringIndex(b *ReplayBuffer, i int) int {
	if !b.full {
		return i
	}
	return (b.next + i) % b.Cap()
}
