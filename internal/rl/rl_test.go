package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func tr(r float64) Transition {
	return Transition{State: []float64{r}, Action: []float64{r}, Reward: r, NextState: []float64{r}}
}

func TestReplayBufferFillAndEvict(t *testing.T) {
	b := NewReplayBuffer(3)
	if b.Len() != 0 || b.Cap() != 3 {
		t.Fatalf("fresh buffer Len=%d Cap=%d", b.Len(), b.Cap())
	}
	for i := 1; i <= 5; i++ {
		b.Add(tr(float64(i)))
	}
	if b.Len() != 3 {
		t.Fatalf("Len=%d want 3", b.Len())
	}
	// After adding 1..5 into capacity 3 ring: slots hold 4,5,3.
	seen := map[float64]bool{}
	for i := 0; i < 3; i++ {
		seen[b.At(i).Reward] = true
	}
	for _, want := range []float64{3, 4, 5} {
		if !seen[want] {
			t.Fatalf("expected reward %v to survive eviction, have %v", want, seen)
		}
	}
	if seen[1] || seen[2] {
		t.Fatal("oldest samples should have been evicted")
	}
}

func TestReplayBufferSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewReplayBuffer(10)
	if got := b.Sample(rng, 5, nil); len(got) != 0 {
		t.Fatal("sampling empty buffer should return nothing")
	}
	for i := 0; i < 4; i++ {
		b.Add(tr(float64(i)))
	}
	got := b.Sample(rng, 32, nil)
	if len(got) != 32 {
		t.Fatalf("sample size %d want 32", len(got))
	}
	for _, s := range got {
		if s.Reward < 0 || s.Reward > 3 {
			t.Fatalf("sampled transition outside stored set: %v", s.Reward)
		}
	}
	// Reuse dst without reallocating.
	got2 := b.Sample(rng, 8, got)
	if len(got2) != 8 {
		t.Fatalf("reuse sample size %d", len(got2))
	}
}

func TestReplayBufferSampleUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := NewReplayBuffer(4)
	for i := 0; i < 4; i++ {
		b.Add(tr(float64(i)))
	}
	counts := map[float64]int{}
	var buf []Transition
	for i := 0; i < 4000; i++ {
		buf = b.Sample(rng, 1, buf)
		counts[buf[0].Reward]++
	}
	for r, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("sampling skewed: reward %v drawn %d/4000", r, c)
		}
	}
}

func TestNewReplayBufferPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReplayBuffer(0)
}

func TestEpsilonLinear(t *testing.T) {
	s := EpsilonSchedule{Start: 1, End: 0.1, Decay: 100, Kind: LinearDecay}
	if s.At(0) != 1 {
		t.Fatalf("At(0)=%v", s.At(0))
	}
	if got := s.At(50); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("At(50)=%v want 0.55", got)
	}
	if s.At(100) != 0.1 || s.At(10000) != 0.1 {
		t.Fatal("linear schedule should clamp at End")
	}
}

func TestEpsilonExp(t *testing.T) {
	s := EpsilonSchedule{Start: 1, End: 0, Decay: 100, Kind: ExpDecay}
	if s.At(0) != 1 {
		t.Fatalf("At(0)=%v", s.At(0))
	}
	if got := s.At(100); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("At(100)=%v want e^-1", got)
	}
}

// Property: every schedule is non-increasing and bounded by [End, Start].
func TestEpsilonMonotone(t *testing.T) {
	f := func(kindRaw bool, decayRaw uint16) bool {
		kind := LinearDecay
		if kindRaw {
			kind = ExpDecay
		}
		decay := float64(decayRaw%1000) + 1
		s := EpsilonSchedule{Start: 1, End: 0.05, Decay: decay, Kind: kind}
		prev := s.At(0)
		for t := 1; t < 2000; t += 7 {
			cur := s.At(t)
			if cur > prev+1e-12 || cur < s.End-1e-12 || cur > s.Start+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonZeroDecay(t *testing.T) {
	s := EpsilonSchedule{Start: 1, End: 0.2, Decay: 0}
	if s.At(0) != 0.2 || s.At(10) != 0.2 {
		t.Fatal("zero decay should pin ε at End")
	}
}

func TestUniformNoiseRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := UniformNoise{Low: 0, High: 1}
	dst := make([]float64, 1000)
	u.Sample(rng, dst)
	var mean float64
	for _, v := range dst {
		if v < 0 || v >= 1 {
			t.Fatalf("sample %v outside [0,1)", v)
		}
		mean += v
	}
	mean /= float64(len(dst))
	if mean < 0.4 || mean > 0.6 {
		t.Fatalf("uniform mean %v implausible", mean)
	}
}

func TestOUNoiseMeanReversion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	o := NewOUNoise(1)
	o.Sigma = 0 // deterministic decay toward mu
	o.state[0] = 10
	dst := make([]float64, 1)
	for i := 0; i < 100; i++ {
		o.Sample(rng, dst)
	}
	if math.Abs(dst[0]) > 1 {
		t.Fatalf("OU noise did not revert to mean: %v", dst[0])
	}
	o.Reset()
	if o.state[0] != 0 {
		t.Fatal("Reset failed")
	}
}

func TestOUNoiseDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o := NewOUNoise(2)
	o.Sample(rand.New(rand.NewSource(5)), make([]float64, 3))
}
