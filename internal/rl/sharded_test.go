package rl

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestShardedAddRemoveCounts covers shard creation, per-shard eviction and
// whole-shard removal accounting.
func TestShardedAddRemoveCounts(t *testing.T) {
	s := NewShardedReplay(2)
	for i := 0; i < 3; i++ {
		s.Add("a", tr(float64(i))) // capacity 2: the first add is evicted
	}
	s.Add("b", tr(10))
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d want 3 (2 in a after eviction + 1 in b)", got)
	}
	if got := s.Shards(); got != 2 {
		t.Fatalf("Shards = %d want 2", got)
	}
	s.Remove("a")
	if got, sh := s.Len(), s.Shards(); got != 1 || sh != 1 {
		t.Fatalf("after remove: Len=%d Shards=%d want 1/1", got, sh)
	}
	s.Remove("missing") // no-op
	if got := s.Len(); got != 1 {
		t.Fatalf("Len after removing missing key = %d", got)
	}
}

// TestShardedSampleDeterministicAcrossInterleavings: the same per-key
// streams added in different global interleavings yield identical sampled
// batches from identical RNG states — the property the online-learning
// golden test depends on.
func TestShardedSampleDeterministicAcrossInterleavings(t *testing.T) {
	build := func(order []int) *ShardedReplay {
		s := NewShardedReplay(16)
		next := map[string]int{}
		for _, who := range order {
			key := fmt.Sprintf("sess-%d", who)
			s.Add(key, tr(float64(who*100+next[key])))
			next[key]++
		}
		return s
	}
	// Same per-session streams (session 0: 0,1,2..., session 1: 100,101...),
	// two different arrival interleavings.
	a := build([]int{0, 1, 0, 1, 2, 0, 2, 1, 0, 2})
	b := build([]int{2, 2, 2, 1, 1, 1, 0, 0, 0, 0})

	sa := a.Sample(rand.New(rand.NewSource(9)), 20, nil)
	sb := b.Sample(rand.New(rand.NewSource(9)), 20, nil)
	if len(sa) != 20 || len(sb) != 20 {
		t.Fatalf("sample sizes %d/%d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Reward != sb[i].Reward {
			t.Fatalf("sample %d differs across interleavings: %v vs %v", i, sa[i].Reward, sb[i].Reward)
		}
	}
}

// TestShardedSampleOrderAfterEviction: logical index 0 is the oldest
// surviving transition even after the ring wraps.
func TestShardedSampleOrderAfterEviction(t *testing.T) {
	s := NewShardedReplay(3)
	for i := 0; i < 5; i++ { // survivors: 2, 3, 4
		s.Add("k", tr(float64(i)))
	}
	seen := map[float64]bool{}
	batch := s.Sample(rand.New(rand.NewSource(1)), 100, nil)
	for _, b := range batch {
		seen[b.Reward] = true
		if b.Reward < 2 {
			t.Fatalf("sampled evicted transition %v", b.Reward)
		}
	}
	for _, want := range []float64{2, 3, 4} {
		if !seen[want] {
			t.Fatalf("100 draws over 3 survivors never hit %v", want)
		}
	}
}

// TestShardedEmptySample returns an empty batch rather than panicking.
func TestShardedEmptySample(t *testing.T) {
	s := NewShardedReplay(4)
	if got := s.Sample(rand.New(rand.NewSource(1)), 8, nil); len(got) != 0 {
		t.Fatalf("sampled %d from empty buffer", len(got))
	}
}

// TestShardedConcurrentAddSample exercises Add/Sample/Remove under the race
// detector.
func TestShardedConcurrentAddSample(t *testing.T) {
	s := NewShardedReplay(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("w%d", w)
			for i := 0; i < 200; i++ {
				s.Add(key, tr(float64(i)))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		var batch []Transition
		for i := 0; i < 100; i++ {
			batch = s.Sample(rng, 16, batch)
			if i%10 == 0 {
				s.Remove("w1")
			}
		}
	}()
	wg.Wait()
}
