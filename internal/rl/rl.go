// Package rl provides the reinforcement-learning primitives shared by the
// DQN and actor-critic agents: the experience replay buffer (§2.3), ε
// exploration schedules, and exploration-noise processes.
package rl

import (
	"fmt"
	"math"
	"math/rand"
)

// Transition is one state transition sample (s, a, r, s′) as stored in the
// replay buffer (Algorithm 1 line 13). State and action layouts are
// agent-defined flat vectors.
type Transition struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
}

// ReplayBuffer is a fixed-capacity ring buffer of transitions with uniform
// random sampling. The paper uses |B| = 1000; when full, the oldest sample
// is discarded (§3.2.1).
type ReplayBuffer struct {
	buf   []Transition
	next  int
	full  bool
	count int
}

// NewReplayBuffer returns a buffer holding at most capacity transitions.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: replay capacity must be positive, got %d", capacity))
	}
	return &ReplayBuffer{buf: make([]Transition, capacity)}
}

// Add stores t, evicting the oldest transition when the buffer is full.
func (b *ReplayBuffer) Add(t Transition) {
	b.buf[b.next] = t
	b.next++
	if b.next == len(b.buf) {
		b.next = 0
		b.full = true
	}
	if b.count < len(b.buf) {
		b.count++
	}
}

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int { return b.count }

// Cap returns the buffer capacity.
func (b *ReplayBuffer) Cap() int { return len(b.buf) }

// Sample draws n transitions uniformly at random (with replacement) into
// dst, which is resized as needed and returned. Sampling with replacement
// matches the mini-batch procedure of [33] and keeps Sample O(n).
func (b *ReplayBuffer) Sample(rng *rand.Rand, n int, dst []Transition) []Transition {
	if b.count == 0 {
		return dst[:0]
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, b.buf[rng.Intn(b.count)])
	}
	return dst
}

// At returns the i-th stored transition in insertion-ring order (test hook).
func (b *ReplayBuffer) At(i int) Transition { return b.buf[i] }

// EpsilonSchedule yields the exploration probability ε at each decision
// epoch; ε decreases with t so that "with more training, more derived
// actions (rather than random ones) will be taken" (§3.2.1).
type EpsilonSchedule struct {
	Start float64 // ε at epoch 0
	End   float64 // asymptotic ε
	Decay float64 // epochs over which ε decays (time constant for Exp, span for Linear)
	Kind  ScheduleKind
}

// ScheduleKind selects the decay curve shape.
type ScheduleKind int

// Supported schedule kinds.
const (
	LinearDecay ScheduleKind = iota
	ExpDecay
)

// At returns ε for decision epoch t (t ≥ 0).
func (s EpsilonSchedule) At(t int) float64 {
	if s.Decay <= 0 {
		return s.End
	}
	switch s.Kind {
	case ExpDecay:
		return s.End + (s.Start-s.End)*math.Exp(-float64(t)/s.Decay)
	default:
		f := float64(t) / s.Decay
		if f >= 1 {
			return s.End
		}
		return s.Start + (s.End-s.Start)*f
	}
}

// UniformNoise is the paper's exploration noise: "The parameter I is a
// uniformly distributed random noise, each element of which was set to a
// random number in [0, 1]" (§3.2.1). R(â) = â + ε·I is applied with
// probability decided by the caller's ε schedule.
type UniformNoise struct {
	Low, High float64
}

// Sample fills dst with independent U[Low, High) draws.
func (u UniformNoise) Sample(rng *rand.Rand, dst []float64) {
	for i := range dst {
		dst[i] = u.Low + rng.Float64()*(u.High-u.Low)
	}
}

// OUNoise is an Ornstein-Uhlenbeck process, the exploration noise used by
// the original DDPG paper [26]; provided for the exploration-noise ablation.
type OUNoise struct {
	Theta, Mu, Sigma float64
	state            []float64
}

// NewOUNoise returns an OU process of dimension dim with standard DDPG
// parameters θ=0.15, μ=0, σ=0.2.
func NewOUNoise(dim int) *OUNoise {
	return &OUNoise{Theta: 0.15, Mu: 0, Sigma: 0.2, state: make([]float64, dim)}
}

// Sample advances the process one step and writes the noise into dst.
func (o *OUNoise) Sample(rng *rand.Rand, dst []float64) {
	if len(dst) != len(o.state) {
		panic(fmt.Sprintf("rl: OUNoise dim %d, dst %d", len(o.state), len(dst)))
	}
	for i := range o.state {
		o.state[i] += o.Theta*(o.Mu-o.state[i]) + o.Sigma*rng.NormFloat64()
		dst[i] = o.state[i]
	}
}

// Reset returns the OU process to its mean.
func (o *OUNoise) Reset() {
	for i := range o.state {
		o.state[i] = 0
	}
}
