// Package sched implements the non-DRL schedulers the paper compares
// against: Storm's default round-robin scheduler, a uniformly random
// scheduler (used to collect offline training samples), the model-based
// predictive scheduler of Li et al. [25] (SVR delay prediction + assignment
// search), and a T-Storm-style traffic-aware heuristic [52] as an extra
// baseline.
package sched

import (
	"fmt"
	"math/rand"

	"repro/internal/env"
)

// Scheduler produces a thread→machine assignment for an environment.
type Scheduler interface {
	// Name identifies the scheduler in experiment output.
	Name() string
	// Schedule returns an assignment of length e.N() with values in
	// [0, e.M()).
	Schedule(e env.Environment) ([]int, error)
}

// RoundRobin reproduces Storm's default scheduler (§2.1): executors are
// dealt to machines in order, yielding an almost even distribution of
// workload with no regard for communication.
type RoundRobin struct{}

// Name implements Scheduler.
func (RoundRobin) Name() string { return "Default" }

// Schedule implements Scheduler.
func (RoundRobin) Schedule(e env.Environment) ([]int, error) {
	n, m := e.N(), e.M()
	if m <= 0 {
		return nil, fmt.Errorf("sched: no machines")
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % m
	}
	return assign, nil
}

// Random assigns every thread to a uniformly random machine; the paper's
// offline-training phase deploys exactly such randomly-generated solutions
// to collect transition samples (§3.2).
type Random struct {
	Rng *rand.Rand
}

// Name implements Scheduler.
func (Random) Name() string { return "Random" }

// Schedule implements Scheduler.
func (r Random) Schedule(e env.Environment) ([]int, error) {
	n, m := e.N(), e.M()
	if m <= 0 {
		return nil, fmt.Errorf("sched: no machines")
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = r.Rng.Intn(m)
	}
	return assign, nil
}
