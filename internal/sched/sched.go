// Package sched implements every scheduler of the comparison set behind
// one interface and one registry: Storm's default round-robin scheduler,
// a uniformly random scheduler (used to collect offline training
// samples), the statistics-free greedy baseline, a T-Storm-style
// traffic-aware heuristic [52], the model-based predictive scheduler of
// Li et al. [25] (SVR delay prediction + assignment search), and — via
// adapters around the internal/core agents — the paper's DQN and
// actor-critic DRL policies.
//
// The Registry (see registry.go) is the single canonical name→factory
// mapping; cmd/simulate, the figure fan-out in internal/experiments, the
// scenario engine in internal/multisim and the tournament harness all
// construct schedulers through it. Trainable schedulers expose an
// explicit Train(budget) phase, after which Schedule projects the frozen
// policy onto the environment it is given.
package sched

import (
	"fmt"
	"math/rand"

	"repro/internal/env"
)

// Scheduler produces a thread→machine assignment for an environment.
type Scheduler interface {
	// Name identifies the scheduler in experiment output.
	Name() string
	// Schedule returns an assignment of length e.N() with values in
	// [0, e.M()).
	Schedule(e env.Environment) ([]int, error)
}

// RoundRobin reproduces Storm's default scheduler (§2.1): executors are
// dealt to machines in order, yielding an almost even distribution of
// workload with no regard for communication.
type RoundRobin struct{}

// Name implements Scheduler.
func (RoundRobin) Name() string { return "Default" }

// Schedule implements Scheduler.
func (RoundRobin) Schedule(e env.Environment) ([]int, error) {
	n, m := e.N(), e.M()
	if m <= 0 {
		return nil, fmt.Errorf("sched: no machines")
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % m
	}
	return assign, nil
}

// Random assigns every thread to a uniformly random machine; the paper's
// offline-training phase deploys exactly such randomly-generated solutions
// to collect transition samples (§3.2).
//
// Schedule derives its stream from Seed alone on every call, so the
// output is a pure function of (Seed, environment dimensions) — the
// registry's (name, seed) reproducibility contract — and repeated calls
// return the same assignment. Callers that want a sequence of distinct
// random schedules use distinct seeds (or actionspace.Space.Random with
// their own stream).
type Random struct {
	Seed int64
}

// Name implements Scheduler.
func (Random) Name() string { return "Random" }

// Schedule implements Scheduler.
func (r Random) Schedule(e env.Environment) ([]int, error) {
	n, m := e.N(), e.M()
	if m <= 0 {
		return nil, fmt.Errorf("sched: no machines")
	}
	rng := rand.New(rand.NewSource(r.Seed))
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.Intn(m)
	}
	return assign, nil
}
