package sched

import (
	"math/rand"
	"testing"

	"repro/internal/analytic"
	"repro/internal/cluster"
	"repro/internal/topology"
	"repro/internal/workload"
)

// testSystem builds a small continuous-queries-like system plus its
// analytic environment.
func testSystem(t testing.TB, rate float64) (*topology.Topology, *cluster.Cluster, *analytic.Evaluator) {
	t.Helper()
	top, err := topology.NewBuilder("cq").
		AddSpout("spout", 2, 0.05, 1, 150).
		AddBolt("query", 5, 0.8, 0.3, 200).
		AddBolt("file", 3, 0.3, 0, 0).
		Connect("spout", "query", topology.Shuffle).
		Connect("query", "file", topology.Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.NewUniform(4)
	arr := map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: rate}}
	ev, err := analytic.New(top, cl, arr)
	if err != nil {
		t.Fatal(err)
	}
	return top, cl, ev
}

func TestRoundRobin(t *testing.T) {
	_, _, ev := testSystem(t, 400)
	s := RoundRobin{}
	if s.Name() != "Default" {
		t.Fatal("name")
	}
	assign, err := s.Schedule(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != ev.N() {
		t.Fatalf("len %d", len(assign))
	}
	// Even distribution: counts differ by at most 1.
	counts := make([]int, ev.M())
	for _, m := range assign {
		counts[m]++
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo > 1 {
		t.Fatalf("round robin uneven: %v", counts)
	}
}

func TestRandomScheduler(t *testing.T) {
	_, _, ev := testSystem(t, 400)
	a, err := Random{Seed: 1}.Schedule(ev)
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent: same seed → same assignment on every call.
	b, err := Random{Seed: 1}.Schedule(ev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] < 0 || a[i] >= ev.M() {
			t.Fatalf("invalid machine %d", a[i])
		}
		if a[i] != b[i] {
			t.Fatalf("same seed produced different schedules at %d: %v vs %v", i, a, b)
		}
	}
	// Distinct seeds → (almost surely) distinct assignments.
	c, err := Random{Seed: 2}.Schedule(ev)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 gave identical schedules (suspicious)")
	}
}

func TestModelBasedBeatsRoundRobin(t *testing.T) {
	top, cl, ev := testSystem(t, 600)
	mb := &ModelBased{Top: top, Cl: cl, Rng: rand.New(rand.NewSource(2)), Samples: 200}
	assign, err := mb.Schedule(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != ev.N() {
		t.Fatalf("len %d", len(assign))
	}
	rr, _ := RoundRobin{}.Schedule(ev)
	mbLat := ev.AvgTupleTimeMS(assign)
	rrLat := ev.AvgTupleTimeMS(rr)
	if mbLat >= rrLat {
		t.Fatalf("model-based %.3f should beat round-robin %.3f", mbLat, rrLat)
	}
}

func TestModelBasedReusesFittedModel(t *testing.T) {
	top, cl, ev := testSystem(t, 500)
	mb := &ModelBased{Top: top, Cl: cl, Rng: rand.New(rand.NewSource(3)), Samples: 100}
	if err := mb.Fit(ev); err != nil {
		t.Fatal(err)
	}
	if mb.model == nil {
		t.Fatal("model not stored")
	}
	if _, err := mb.Schedule(ev); err != nil {
		t.Fatal(err)
	}
}

func TestModelBasedDimensionMismatch(t *testing.T) {
	top, cl, _ := testSystem(t, 500)
	// Environment from a *different* system.
	otherTop, err := topology.NewBuilder("other").
		AddSpout("s", 1, 0.1, 1, 100).
		AddBolt("b", 1, 0.1, 0, 0).
		Connect("s", "b", topology.Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	otherEv, err := analytic.New(otherTop, cluster.NewUniform(2),
		map[string]workload.ArrivalProcess{"s": workload.ConstantRate{PerSecond: 10}})
	if err != nil {
		t.Fatal(err)
	}
	mb := &ModelBased{Top: top, Cl: cl, Rng: rand.New(rand.NewSource(4))}
	if err := mb.Fit(otherEv); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestTrafficAware(t *testing.T) {
	top, cl, ev := testSystem(t, 600)
	ta := &TrafficAware{Top: top, Cl: cl}
	assign, err := ta.Schedule(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != ev.N() {
		t.Fatalf("len %d", len(assign))
	}
	for _, m := range assign {
		if m < 0 || m >= ev.M() {
			t.Fatalf("invalid machine %d", m)
		}
	}
	// The heuristic should keep latency at or below round-robin's since it
	// co-locates communicating executors.
	rr, _ := RoundRobin{}.Schedule(ev)
	if ta2, rr2 := ev.AvgTupleTimeMS(assign), ev.AvgTupleTimeMS(rr); ta2 > rr2*1.1 {
		t.Fatalf("traffic-aware %.3f much worse than round-robin %.3f", ta2, rr2)
	}
	// Load cap honored.
	counts := make([]int, ev.M())
	for _, m := range assign {
		counts[m]++
	}
	cap := int(float64((ev.N()+ev.M()-1)/ev.M())*1.5) + 1
	for m, c := range counts {
		if c > cap {
			t.Fatalf("machine %d holds %d executors, cap %d", m, c, cap)
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	if (RoundRobin{}).Name() != "Default" {
		t.Fatal("RoundRobin name")
	}
	if (Random{}).Name() != "Random" {
		t.Fatal("Random name")
	}
	if (&ModelBased{}).Name() != "Model-based" {
		t.Fatal("ModelBased name")
	}
	if (&TrafficAware{}).Name() != "Traffic-aware" {
		t.Fatal("TrafficAware name")
	}
}

func TestModelBasedAvoidsOverload(t *testing.T) {
	// On a system whose full consolidation overloads a machine, the
	// capacity guard must keep the search out of saturated schedules.
	top, cl, ev := testSystem(t, 2500)
	mb := &ModelBased{Top: top, Cl: cl, Rng: rand.New(rand.NewSource(7)), Samples: 150}
	assign, err := mb.Schedule(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !mb.capacityOK(assign, ev.Workload()) {
		t.Fatalf("model-based chose a schedule violating its own capacity guard: %v", assign)
	}
	// The resulting latency must be finite/sane, not an overload artifact.
	if lat := ev.AvgTupleTimeMS(assign); lat <= 0 || lat > 100 {
		t.Fatalf("model-based schedule latency %v", lat)
	}
}

func TestCapacityOKDetectsHotMachine(t *testing.T) {
	top, cl, ev := testSystem(t, 2500)
	mb := &ModelBased{Top: top, Cl: cl, Rng: rand.New(rand.NewSource(8))}
	n := top.NumExecutors()
	allOnOne := make([]int, n)
	if mb.capacityOK(allOnOne, ev.Workload()) {
		t.Fatal("packing everything on one machine at high rate should violate capacity")
	}
	rr := make([]int, n)
	for i := range rr {
		rr[i] = i % cl.Size()
	}
	if !mb.capacityOK(rr, ev.Workload()) {
		t.Fatal("round-robin should satisfy capacity")
	}
}

func TestModelBasedClipsOutliers(t *testing.T) {
	// Fit must tolerate environments that return huge overload latencies
	// for some random schedules.
	top, cl, ev := testSystem(t, 2500)
	mb := &ModelBased{Top: top, Cl: cl, Rng: rand.New(rand.NewSource(9)), Samples: 120}
	if err := mb.Fit(ev); err != nil {
		t.Fatal(err)
	}
	rr := make([]int, top.NumExecutors())
	for i := range rr {
		rr[i] = i % cl.Size()
	}
	pred := mb.model.Predict(mb.features(rr, ev.Workload()))
	actual := ev.AvgTupleTimeMS(rr)
	// Prediction must be in the right ballpark (not dragged to the
	// overload magnitude by outliers).
	if pred < actual/4 || pred > actual*4 {
		t.Fatalf("prediction %v far from actual %v", pred, actual)
	}
}
