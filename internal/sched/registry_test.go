package sched

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// testConfig builds a registry Config for the shared test system, with
// budgets small enough for the trainable schedulers to run in test time.
func testConfig(t testing.TB, seed int64) Config {
	t.Helper()
	top, cl, _ := testSystem(t, 400)
	return Config{
		Top: top, Cl: cl,
		Arrivals:     map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: 400}},
		Seed:         seed,
		TrainBudget:  30,
		OnlineEpochs: 10,
		Workers:      1,
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	want := map[string]string{
		"default": "Default",
		"greedy":  "Greedy",
		"random":  "Random",
		"traffic": "Traffic-aware",
		"model":   "Model-based",
		"dqn":     "DQN-based DRL",
		"ac":      "Actor-critic-based DRL",
	}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d names %v, want %d", len(names), names, len(want))
	}
	cfg := testConfig(t, 1)
	for _, name := range names {
		s, err := New(name, cfg)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if got := s.Name(); got != want[name] {
			t.Errorf("New(%q).Name() = %q, want %q", name, got, want[name])
		}
	}
}

func TestRegistryCanonicalOrder(t *testing.T) {
	got := strings.Join(Names(), ",")
	want := "default,greedy,random,traffic,model,dqn,ac"
	if got != want {
		t.Fatalf("canonical order %s, want %s", got, want)
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := New("oracle", testConfig(t, 1))
	if err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if !strings.Contains(err.Error(), `"oracle"`) || !strings.Contains(err.Error(), "ac|") {
		t.Fatalf("error should name the offender and the known set: %v", err)
	}
}

func TestRegistryRejectsBadConfig(t *testing.T) {
	if _, err := New("default", Config{}); err == nil {
		t.Fatal("config without Top/Cl accepted")
	}
}

func TestRegistryRegisterErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", func(Config) (Scheduler, error) { return RoundRobin{}, nil }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Register("x", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := r.Register("x", func(Config) (Scheduler, error) { return RoundRobin{}, nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("x", func(Config) (Scheduler, error) { return RoundRobin{}, nil }); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if !r.Has("x") || r.Has("y") {
		t.Fatal("Has")
	}
}

// TestUniformSeeding is the registry's reproducibility contract: for
// every registered scheduler, two independent constructions from the
// same (name, seed) produce identical assignments, and the stochastic
// ones differ across seeds.
func TestUniformSeeding(t *testing.T) {
	_, _, ev := testSystem(t, 400)
	for _, name := range Names() {
		a := scheduleWith(t, name, 7, ev)
		b := scheduleWith(t, name, 7, ev)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at %d: %v vs %v", name, i, a, b)
			}
		}
	}
	// The random scheduler must actually depend on the seed.
	a := scheduleWith(t, "random", 7, ev)
	c := scheduleWith(t, "random", 8, ev)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("random scheduler ignored the seed")
	}
}

func scheduleWith(t testing.TB, name string, seed int64, e interface {
	N() int
	M() int
	Workload() []float64
	AvgTupleTimeMS([]int) float64
}) []int {
	t.Helper()
	cfg := testConfig(t, seed)
	s, err := New(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := s.Schedule(e)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(assign) != e.N() {
		t.Fatalf("%s: len %d want %d", name, len(assign), e.N())
	}
	for _, m := range assign {
		if m < 0 || m >= e.M() {
			t.Fatalf("%s: invalid machine %d", name, m)
		}
	}
	return assign
}

// TestTrainableLifecycle checks the explicit Train(budget) → frozen
// Schedule contract on every trainable scheduler.
func TestTrainableLifecycle(t *testing.T) {
	_, _, ev := testSystem(t, 400)
	for _, name := range []string{"model", "dqn", "ac"} {
		s, err := New(name, testConfig(t, 3))
		if err != nil {
			t.Fatal(err)
		}
		tr, ok := s.(Trainable)
		if !ok {
			t.Fatalf("%s does not implement Trainable", name)
		}
		if tr.Trained() {
			t.Fatalf("%s trained before Train", name)
		}
		if err := tr.Train(0); err != nil {
			t.Fatalf("%s Train: %v", name, err)
		}
		if !tr.Trained() {
			t.Fatalf("%s not trained after Train", name)
		}
		// Frozen: repeated Schedule calls are idempotent.
		a, err := tr.Schedule(ev)
		if err != nil {
			t.Fatalf("%s Schedule: %v", name, err)
		}
		b, err := tr.Schedule(ev)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: frozen policy diverged at %d: %v vs %v", name, i, a, b)
			}
		}
		// Re-training is a no-op, not an error.
		if err := tr.Train(999); err != nil {
			t.Fatalf("%s re-Train: %v", name, err)
		}
	}
}

// TestTrainableDimensionMismatch: a trained scheduler refuses an
// environment with different dimensions instead of emitting a garbage
// assignment.
func TestTrainableDimensionMismatch(t *testing.T) {
	s, err := New("ac", testConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	small := StaticEnv{NExec: 2, NMach: 2, Rates: []float64{1, 1}}
	if _, err := s.Schedule(small); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestTrainEnvScaling: the mutable training environment rescales all
// arrival rates around the time-0 snapshot.
func TestTrainEnvScaling(t *testing.T) {
	cfg := testConfig(t, 5)
	te, err := cfg.newTrainEnv()
	if err != nil {
		t.Fatal(err)
	}
	base := te.Workload()
	te.setScale(1.5)
	scaled := te.Workload()
	for i := range base {
		if base[i] == 0 {
			continue
		}
		if r := scaled[i] / base[i]; r < 1.49 || r > 1.51 {
			t.Fatalf("slot %d scaled by %v, want 1.5", i, r)
		}
	}
	te.setScale(1)
	back := te.Workload()
	for i := range base {
		if back[i] != base[i] {
			t.Fatalf("setScale(1) did not restore slot %d", i)
		}
	}
}
