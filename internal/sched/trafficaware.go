package sched

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/env"
	"repro/internal/topology"
)

// TrafficAware is a T-Storm-style heuristic [52]: greedily place executors
// in descending traffic order onto the machine that minimizes incremental
// inter-machine traffic, subject to a load-balance cap. It pursues the
// *indirect* goal the paper contrasts with DRL (minimizing inter-node
// traffic in the hope that it minimizes tuple processing time, §3.1).
type TrafficAware struct {
	Top *topology.Topology
	Cl  *cluster.Cluster
	// MaxImbalance caps a machine's executor count at
	// ceil(N/M)·MaxImbalance (default 1.5).
	MaxImbalance float64
}

// Name implements Scheduler.
func (*TrafficAware) Name() string { return "Traffic-aware" }

// Schedule implements Scheduler.
func (ta *TrafficAware) Schedule(e env.Environment) ([]int, error) {
	top := ta.Top
	n, m := e.N(), e.M()
	work := e.Workload()

	// Component input rates (even-split propagation).
	compIn := map[string]float64{}
	for i, sp := range top.Spouts() {
		if i < len(work) {
			compIn[sp.Name] = work[i]
		}
	}
	for _, name := range top.Order() {
		c := top.Component(name)
		out := compIn[name] * c.Selectivity
		for _, e2 := range top.Out(name) {
			d := top.Component(e2.To)
			if e2.Grouping == topology.All {
				compIn[e2.To] += out * float64(d.Parallelism)
			} else {
				compIn[e2.To] += out
			}
		}
	}

	// Pairwise executor traffic (bytes/s), assuming even splits.
	traffic := make(map[[2]int]float64)
	execTraffic := make([]float64, n)
	for _, e2 := range top.Edges {
		src, dst := top.Component(e2.From), top.Component(e2.To)
		sLo, _ := top.ExecutorRange(e2.From)
		dLo, _ := top.ExecutorRange(e2.To)
		perPair := compIn[e2.From] * src.Selectivity * src.TupleBytes /
			float64(src.Parallelism) / float64(dst.Parallelism)
		for st := 0; st < src.Parallelism; st++ {
			for dt := 0; dt < dst.Parallelism; dt++ {
				a, b := sLo+st, dLo+dt
				traffic[[2]int{a, b}] += perPair
				execTraffic[a] += perPair
				execTraffic[b] += perPair
			}
		}
	}

	// Greedy placement in descending traffic order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return execTraffic[order[a]] > execTraffic[order[b]] })

	cap := int(float64((n+m-1)/m)*ta.maxImbalance()) + 1
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int, m)
	for _, x := range order {
		bestM, bestGain := -1, -1.0
		for mm := 0; mm < m; mm++ {
			if counts[mm] >= cap {
				continue
			}
			// Gain: traffic kept local by placing x with already-placed
			// neighbors on mm, minus a mild load penalty.
			gain := 0.0
			for y := 0; y < n; y++ {
				if assign[y] != mm {
					continue
				}
				gain += traffic[[2]int{x, y}] + traffic[[2]int{y, x}]
			}
			gain -= float64(counts[mm]) * 1e-6 // tie-break toward balance
			if bestM == -1 || gain > bestGain {
				bestM, bestGain = mm, gain
			}
		}
		if bestM == -1 {
			bestM = 0
		}
		assign[x] = bestM
		counts[bestM]++
	}
	return assign, nil
}

func (ta *TrafficAware) maxImbalance() float64 {
	if ta.MaxImbalance <= 1 {
		return 1.5
	}
	return ta.MaxImbalance
}
