package sched

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/env"
	"repro/internal/topology"
)

// Greedy is the statistics-free baseline (janus-datalog's "when greedy
// beats optimal" question applied to stream scheduling): no measurements,
// no cost-model fitting, no training — one O(N·M·E) pass over static
// topology and cluster structure. Executors are placed in topology order;
// each goes to the machine minimizing speed-normalized accumulated service
// demand, discounted by an affinity bonus for machines already hosting
// upstream executors (co-location avoids serialization + network latency).
// Its value in the tournament is the denominator: per-decision cost is
// nanoseconds, so any quality gap to the DRL policies is the price of
// statistics.
type Greedy struct {
	Top *topology.Topology
	Cl  *cluster.Cluster
	// Affinity weights upstream co-location against load balance; the
	// discount per upstream executor already on a machine is
	// Affinity·(SerializeMS+NetworkMS)/parallelism. Default 1.0.
	Affinity float64

	// LastScheduleNS and LastDecisions record the wall-clock cost of the
	// most recent Schedule call — the tournament reports
	// LastScheduleNS/LastDecisions as per-decision latency alongside
	// solution quality.
	LastScheduleNS int64
	LastDecisions  int
}

// Name implements Scheduler.
func (*Greedy) Name() string { return "Greedy" }

// Schedule implements Scheduler.
func (g *Greedy) Schedule(e env.Environment) ([]int, error) {
	start := time.Now()
	top, cl := g.Top, g.Cl
	n, m := e.N(), e.M()
	if m <= 0 {
		return nil, fmt.Errorf("sched: no machines")
	}
	if n != top.NumExecutors() || m != cl.Size() {
		return nil, fmt.Errorf("sched: greedy configured for %dx%d, environment is %dx%d",
			top.NumExecutors(), cl.Size(), n, m)
	}

	// Static structure: component of each executor, upstream components of
	// each component. Builder order is topological, so by the time an
	// executor is placed its upstream peers already are.
	nc := len(top.Components)
	cidx := make(map[string]int, nc)
	compOf := make([]int, n)
	for i, c := range top.Components {
		cidx[c.Name] = i
		lo, hi := top.ExecutorRange(c.Name)
		for x := lo; x < hi; x++ {
			compOf[x] = i
		}
	}
	ins := make([][]int, nc)
	for _, ed := range top.Edges {
		ins[cidx[ed.To]] = append(ins[cidx[ed.To]], cidx[ed.From])
	}

	affinity := g.Affinity
	if affinity <= 0 {
		affinity = 1.0
	}
	assign := make([]int, n)
	load := make([]float64, m)    // accumulated service demand (ms per tuple)
	placed := make([][]int, m)    // per machine: executor count per component
	for mm := range placed {
		placed[mm] = make([]int, nc)
	}
	for x := 0; x < n; x++ {
		c := compOf[x]
		cost := top.Components[c].ServiceMeanMS
		best, bestScore := -1, 0.0
		for mm := 0; mm < m; mm++ {
			score := (load[mm] + cost) / cl.Machines[mm].SpeedFactor
			for _, u := range ins[c] {
				if cnt := placed[mm][u]; cnt > 0 {
					score -= affinity * (cl.SerializeMS + cl.NetworkMS) *
						float64(cnt) / float64(top.Components[u].Parallelism)
				}
			}
			// Strict improvement required: ties go to the lowest machine
			// index, keeping the pass deterministic.
			if best == -1 || score < bestScore {
				best, bestScore = mm, score
			}
		}
		assign[x] = best
		load[best] += cost
		placed[best][c]++
	}
	g.LastScheduleNS = time.Since(start).Nanoseconds()
	g.LastDecisions = n
	return assign, nil
}

// PerDecisionNS returns the mean wall-clock nanoseconds per executor
// placement in the most recent Schedule call (0 before any call).
func (g *Greedy) PerDecisionNS() int64 {
	if g.LastDecisions == 0 {
		return 0
	}
	return g.LastScheduleNS / int64(g.LastDecisions)
}
