package sched

// Adapters that make the trained policies — the paper's actor-critic and
// DQN agents and the model-based SVR baseline — first-class Schedulers
// with the registry's Train(budget) → frozen Schedule lifecycle. This is
// what lets scenarios (internal/multisim) and the tournament harness
// place with DRL policies through the same interface as the
// training-free baselines.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/nn"
	"repro/internal/workload"
)

// trainEnv is the mutable-rate analytic environment trainable schedulers
// learn on: a constant-rate snapshot of the configured arrival processes
// (taken at control-plane time 0) whose rates can be rescaled to expose
// the agent to varying workloads.
type trainEnv struct {
	*analytic.Evaluator
	rates map[string]*workload.ConstantRate
	base  map[string]float64
}

func (cfg Config) newTrainEnv() (*trainEnv, error) {
	rates := map[string]*workload.ConstantRate{}
	base := map[string]float64{}
	arr := map[string]workload.ArrivalProcess{}
	for name, p := range cfg.Arrivals {
		r := &workload.ConstantRate{PerSecond: p.RateAt(0)}
		rates[name] = r
		base[name] = r.PerSecond
		arr[name] = r
	}
	ev, err := analytic.New(cfg.Top, cfg.Cl, arr)
	if err != nil {
		return nil, err
	}
	return &trainEnv{Evaluator: ev, rates: rates, base: base}, nil
}

// setScale multiplies all base rates by s.
func (te *trainEnv) setScale(s float64) {
	for name, r := range te.rates {
		r.PerSecond = te.base[name] * s
	}
}

// noisy wraps the training environment with the configured measurement
// jitter (the paper's real-cluster noise model).
func (cfg Config) noisy(te *trainEnv, rngOff, streamOff int64) *env.Noisy {
	return &env.Noisy{
		Environment: te,
		Sigma:       cfg.MeasureSigma,
		Rng:         rand.New(rand.NewSource(cfg.Seed + rngOff)),
		StreamSeed:  cfg.Seed + streamOff,
	}
}

// jitterer perturbs the training workload every few epochs.
type jitterer struct {
	te  *trainEnv
	amp float64
	rng *rand.Rand
}

func (j *jitterer) maybe() {
	if j.amp <= 0 {
		return
	}
	s := 1 + j.amp*(2*j.rng.Float64()-1)
	j.te.setScale(s)
}

// gemmPool returns the worker pool a training run's GEMM row bands shard
// across (nil = sequential kernels). The kernels are bitwise invariant
// to the pool, so this never affects the trained policy.
func (cfg Config) gemmPool() *nn.Pool {
	if cfg.Sem == nil {
		return nil
	}
	return nn.NewPool(cfg.Sem)
}

// checkDims verifies a deployment environment matches the configuration
// the scheduler was built (and trained) for.
func (cfg Config) checkDims(kind string, e env.Environment) error {
	if e.N() != cfg.Top.NumExecutors() || e.M() != cfg.Cl.Size() {
		return fmt.Errorf("sched: %s configured for %d×%d, environment is %d×%d",
			kind, cfg.Top.NumExecutors(), cfg.Cl.Size(), e.N(), e.M())
	}
	return nil
}

// DRL wraps a core DRL agent (actor-critic or DQN) as a Trainable
// Scheduler. Train runs the paper's two-phase loop — offline collection
// of random-schedule transitions, then online learning — against the
// fast analytic environment built from the Config; Schedule then freezes
// the policy and returns its exploitation-only solution for the
// environment's current workload.
type DRL struct {
	cfg     Config
	agent   core.Agent
	ctrl    *core.Controller
	rewards []float64
	trained bool
}

func newDRL(cfg Config, agent core.Agent) *DRL {
	return &DRL{cfg: cfg, agent: agent}
}

// Name implements Scheduler with the agent's paper name
// ("Actor-critic-based DRL" / "DQN-based DRL").
func (d *DRL) Name() string { return d.agent.Name() }

// Trained implements Trainable.
func (d *DRL) Trained() bool { return d.trained }

// Agent exposes the wrapped agent (persistence, serving handoff).
func (d *DRL) Agent() core.Agent { return d.agent }

// Rewards returns the raw online-learning reward history (−ms per
// decision epoch) — the reward-curve figures' input.
func (d *DRL) Rewards() []float64 { return d.rewards }

// Train implements Trainable: offline collection of `budget` random
// transitions (chunked, with workload jitter between chunks) followed by
// online learning. budget ≤ 0 uses Config.TrainBudget (default 500).
// Training happens at most once; later calls are no-ops.
func (d *DRL) Train(budget int) error {
	if d.trained {
		return nil
	}
	cfg := d.cfg
	if budget <= 0 {
		budget = cfg.TrainBudget
	}
	if budget <= 0 {
		budget = 500
	}
	te, err := cfg.newTrainEnv()
	if err != nil {
		return err
	}
	d.ctrl = core.NewController(cfg.noisy(te, seedNoisyRng, seedNoisyStream), d.agent)
	jit := &jitterer{te: te, amp: cfg.WorkloadJitter, rng: rand.New(rand.NewSource(cfg.Seed + seedJitter))}
	if p := cfg.gemmPool(); p != nil {
		type pooled interface{ SetPool(*nn.Pool) }
		if ag, ok := d.agent.(pooled); ok {
			ag.SetPool(p)
		}
	}

	// Offline phase: collect in chunks so the workload can vary between
	// chunks (the paper collects 10,000 samples "for each experimental
	// setup"); within a chunk the rollouts fan out over the pool.
	for remaining := budget; remaining > 0; {
		chunk := 25
		if chunk > remaining {
			chunk = remaining
		}
		if err := d.ctrl.CollectOfflineParallel(chunk, chunk, cfg.Sem, cfg.Workers); err != nil {
			return err
		}
		remaining -= chunk
		jit.maybe()
	}

	// Online phase.
	epochs := cfg.OnlineEpochs
	if epochs <= 0 {
		epochs = budget / 2
	}
	for t := 0; t < epochs; t += 25 {
		n := 25
		if t+n > epochs {
			n = epochs - t
		}
		d.ctrl.OnlineLearn(n, nil)
		jit.maybe()
	}
	// Leave the environment at the base workload so policies extracted
	// without an explicit workload target the nominal rates.
	te.setScale(1)
	d.rewards = d.ctrl.Rewards
	d.trained = true
	return nil
}

// Schedule implements Scheduler: the frozen policy's exploitation-only
// solution for e's current workload (training first with the configured
// budget if Train was never called). The agent's greedy paths are pure —
// repeated calls with the same workload return the same assignment.
func (d *DRL) Schedule(e env.Environment) ([]int, error) {
	if !d.trained {
		if err := d.Train(0); err != nil {
			return nil, err
		}
	}
	if err := d.cfg.checkDims(d.Name(), e); err != nil {
		return nil, err
	}
	return d.Policy(d.ctrl.Assign, e.Workload()), nil
}

// Policy returns the frozen policy's exploitation-only choice from an
// arbitrary state — how a trained agent reacts to a workload change
// without re-training (Figure 12's adaptivity path).
func (d *DRL) Policy(assign []int, work []float64) []int {
	type greedy interface {
		Greedy(assign []int, work []float64) []int
	}
	if g, ok := d.agent.(greedy); ok {
		return g.Greedy(assign, work)
	}
	return append([]int(nil), assign...)
}

// ModelBasedTrained wraps the model-based SVR baseline with the
// Train→Schedule lifecycle: Train fits the predictor on random schedules
// measured on the analytic training environment (with the configured
// measurement noise); Schedule then searches the assignment space under
// the frozen model's guidance for the environment's current workload.
type ModelBasedTrained struct {
	cfg     Config
	mb      *ModelBased
	trained bool
}

func newModelBasedTrained(cfg Config) (Scheduler, error) {
	return &ModelBasedTrained{
		cfg: cfg,
		mb: &ModelBased{
			Top: cfg.Top, Cl: cfg.Cl,
			Rng:     rand.New(rand.NewSource(cfg.Seed + seedModelRng)),
			Samples: cfg.TrainBudget,
			Sem:     cfg.Sem,
			Workers: cfg.Workers,
		},
	}, nil
}

// Name implements Scheduler.
func (t *ModelBasedTrained) Name() string { return t.mb.Name() }

// Trained implements Trainable.
func (t *ModelBasedTrained) Trained() bool { return t.trained }

// Train implements Trainable: measure `budget` random schedules on the
// noisy analytic environment and fit the SVR (budget ≤ 0 uses
// Config.TrainBudget, which zero-defaults to ModelBased's 300).
func (t *ModelBasedTrained) Train(budget int) error {
	if t.trained {
		return nil
	}
	if budget > 0 {
		t.mb.Samples = budget
	}
	te, err := t.cfg.newTrainEnv()
	if err != nil {
		return err
	}
	if err := t.mb.Fit(t.cfg.noisy(te, seedModelNoisy, seedModelStream)); err != nil {
		return err
	}
	t.trained = true
	return nil
}

// Schedule implements Scheduler: local search under the fitted model for
// e's current workload (training first if Train was never called).
func (t *ModelBasedTrained) Schedule(e env.Environment) ([]int, error) {
	if !t.trained {
		if err := t.Train(0); err != nil {
			return nil, err
		}
	}
	if err := t.cfg.checkDims(t.mb.Name(), e); err != nil {
		return nil, err
	}
	return t.mb.Schedule(e)
}

// StaticEnv is a minimal env.Environment carrying fixed dimensions and a
// fixed workload — what a frozen scheduler needs to re-project its
// policy under a hypothetical workload (the Figure 12 workload-change
// reaction). It cannot be measured: trained schedulers never call
// AvgTupleTimeMS after training, and handing a StaticEnv to an untrained
// scheduler is a programming error.
type StaticEnv struct {
	NExec    int
	NMach    int
	Rates    []float64
}

// N implements env.Environment.
func (s StaticEnv) N() int { return s.NExec }

// M implements env.Environment.
func (s StaticEnv) M() int { return s.NMach }

// Workload implements env.Environment.
func (s StaticEnv) Workload() []float64 { return append([]float64(nil), s.Rates...) }

// AvgTupleTimeMS implements env.Environment; a StaticEnv has no system
// behind it, so measuring through it returns NaN (poisoning any model
// fitted against it rather than silently training on zeros).
func (StaticEnv) AvgTupleTimeMS([]int) float64 { return math.NaN() }
