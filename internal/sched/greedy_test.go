package sched

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
)

func TestGreedyValidAndDeterministic(t *testing.T) {
	top, cl, ev := testSystem(t, 400)
	g := &Greedy{Top: top, Cl: cl}
	if g.Name() != "Greedy" {
		t.Fatal("name")
	}
	a, err := g.Schedule(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != ev.N() {
		t.Fatalf("len %d want %d", len(a), ev.N())
	}
	for i, m := range a {
		if m < 0 || m >= ev.M() {
			t.Fatalf("executor %d on invalid machine %d", i, m)
		}
	}
	b, err := g.Schedule(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("greedy not deterministic: %v vs %v", a, b)
	}
	if g.LastScheduleNS <= 0 || g.LastDecisions != ev.N() {
		t.Fatalf("decision-latency accounting missing: ns=%d decisions=%d", g.LastScheduleNS, g.LastDecisions)
	}
	if g.PerDecisionNS() < 0 {
		t.Fatalf("per-decision latency %d", g.PerDecisionNS())
	}
}

func TestGreedySpreadsLoad(t *testing.T) {
	top, cl, ev := testSystem(t, 400)
	g := &Greedy{Top: top, Cl: cl}
	a, err := g.Schedule(ev)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, ev.M())
	for _, m := range a {
		counts[m]++
	}
	for m, c := range counts {
		if c == ev.N() {
			t.Fatalf("all executors piled on machine %d", m)
		}
	}
	used := 0
	for _, c := range counts {
		if c > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("greedy used %d machine(s): %v", used, counts)
	}
}

func TestGreedyPrefersFastMachines(t *testing.T) {
	top, cl, ev := testSystem(t, 400)
	cl.Machines[2].SpeedFactor = 3.0 // one machine much faster
	g := &Greedy{Top: top, Cl: cl}
	a, err := g.Schedule(ev)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, ev.M())
	for _, m := range a {
		counts[m]++
	}
	for m, c := range counts {
		if m != 2 && counts[2] < c {
			t.Fatalf("fast machine 2 got %d executors, slower machine %d got %d: %v", counts[2], m, c, counts)
		}
	}
}

func TestGreedyDimensionMismatch(t *testing.T) {
	top, _, ev := testSystem(t, 400)
	g := &Greedy{Top: top, Cl: cluster.NewUniform(2)} // env reports M=4
	if _, err := g.Schedule(ev); err == nil {
		t.Fatal("mismatched cluster size should fail")
	}
}
