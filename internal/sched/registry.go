package sched

// The scheduler registry: one canonical name→factory mapping for the
// whole comparison set. Every consumer that used to hand-roll a switch
// over scheduler names — cmd/simulate's schedule(), the figure fan-out's
// scheduler list, internal/multisim's scenario placement — constructs
// through Default instead, so adding a scheduler (or a trained policy)
// to the comparison set is one Register call.
//
// Seeding is uniform: a Factory derives every RNG it needs (agent
// initialization, exploration, measurement jitter, workload jitter, the
// random scheduler's stream) from Config.Seed with fixed offsets, so a
// scheduler's output is a pure function of (name, Config) — tournament
// rows are independently reproducible from (name, seed) alone.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Config carries everything a Factory needs to build a scheduler for one
// (topology, cluster, workload) triple. Training-free schedulers use only
// the structural fields; trainable ones also honor the budgets and the
// training-noise knobs.
type Config struct {
	Top      *topology.Topology
	Cl       *cluster.Cluster
	Arrivals map[string]workload.ArrivalProcess

	// Seed is the single reproducibility knob. Factories derive their RNG
	// streams from it with fixed per-scheduler offsets (the same offsets
	// the figure pipelines have always used), never from shared state.
	Seed int64

	// TrainBudget is the offline training budget for Trainable schedulers:
	// offline transition samples for the DRL agents, fit samples for the
	// model-based baseline. Zero keeps the scheduler's default.
	TrainBudget int
	// OnlineEpochs is the DRL agents' online-learning epoch count after
	// the offline phase. Zero means TrainBudget/2.
	OnlineEpochs int
	// MeasureSigma perturbs training measurements with multiplicative
	// Gaussian noise (real-cluster measurement jitter). Zero = exact.
	MeasureSigma float64
	// WorkloadJitter rescales the training workload within
	// [1−j, 1+j] between training chunks so the workload part of the DRL
	// state carries signal. Zero = stationary training workload.
	WorkloadJitter float64
	// ACUpdates overrides the actor-critic's SGD updates per decision
	// epoch (reduced-budget configurations compensate with more updates).
	ACUpdates int

	// Sem/Workers fan a trainable scheduler's environment rollouts and
	// training GEMMs out over the shared worker pool; both paths are
	// bitwise pool-invariant, so they never change the trained policy.
	// Workers 1 forces fully sequential training.
	Sem     *parallel.Sem
	Workers int
}

// validate checks the structural fields every factory needs.
func (cfg Config) validate() error {
	if cfg.Top == nil || cfg.Cl == nil {
		return fmt.Errorf("sched: config needs Top and Cl")
	}
	return nil
}

// Factory builds an unstarted scheduler from a configuration.
type Factory func(cfg Config) (Scheduler, error)

// Trainable is a Scheduler with an explicit training lifecycle:
// Train(budget) spends the budget exactly once (budget ≤ 0 uses the
// configured Config.TrainBudget), after which the policy is frozen and
// Schedule projects it onto whatever environment it is given. Calling
// Schedule on an untrained scheduler trains first with the configured
// budget; calling Train again after training is a no-op.
type Trainable interface {
	Scheduler
	Train(budget int) error
	Trained() bool
}

// Registry maps canonical scheduler names to factories, preserving
// registration order (the canonical comparison-set order).
type Registry struct {
	mu        sync.RWMutex
	names     []string
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: map[string]Factory{}}
}

// Register adds a named factory. Empty names and duplicates are errors:
// the registry is the one place that knows the comparison set, and a
// silent overwrite would make that set ambiguous.
func (r *Registry) Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("sched: scheduler name must be non-empty")
	}
	if f == nil {
		return fmt.Errorf("sched: nil factory for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("sched: scheduler %q already registered", name)
	}
	r.factories[name] = f
	r.names = append(r.names, name)
	return nil
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.factories[name]
	return ok
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// New constructs the named scheduler. Unknown names are errors that list
// the registered set (sorted, so the message is deterministic).
func (r *Registry) New(name string, cfg Config) (Scheduler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		known := r.Names()
		sort.Strings(known)
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %s)", name, strings.Join(known, "|"))
	}
	return f(cfg)
}

// Default is the process-wide registry holding the full comparison set,
// in canonical order: the training-free schedulers first (cheap to
// expensive), then the trained ones.
var Default = func() *Registry {
	r := NewRegistry()
	reg := func(name string, f Factory) {
		if err := r.Register(name, f); err != nil {
			panic(err)
		}
	}
	reg("default", func(cfg Config) (Scheduler, error) {
		return RoundRobin{}, nil
	})
	reg("greedy", func(cfg Config) (Scheduler, error) {
		return &Greedy{Top: cfg.Top, Cl: cfg.Cl}, nil
	})
	reg("random", func(cfg Config) (Scheduler, error) {
		return Random{Seed: cfg.Seed}, nil
	})
	reg("traffic", func(cfg Config) (Scheduler, error) {
		return &TrafficAware{Top: cfg.Top, Cl: cfg.Cl}, nil
	})
	reg("model", newModelBasedTrained)
	reg("dqn", func(cfg Config) (Scheduler, error) {
		n, m, spouts := cfg.Top.NumExecutors(), cfg.Cl.Size(), len(cfg.Top.Spouts())
		return newDRL(cfg, core.NewDQN(n, m, spouts, core.DefaultDQNConfig(), cfg.Seed+seedDQNAgent)), nil
	})
	reg("ac", func(cfg Config) (Scheduler, error) {
		n, m, spouts := cfg.Top.NumExecutors(), cfg.Cl.Size(), len(cfg.Top.Spouts())
		acc := core.DefaultACConfig()
		if cfg.ACUpdates > 0 {
			acc.UpdatesPerStep = cfg.ACUpdates
		}
		return newDRL(cfg, core.NewActorCritic(n, m, spouts, acc, cfg.Seed+seedACAgent)), nil
	})
	return r
}()

// Seed offsets, shared by every factory so that a scheduler trained
// anywhere (figure pipeline, tournament cell, scenario placement)
// reproduces bit-for-bit from the same Config. They match the offsets
// the figure pipelines in internal/experiments have used since PR 1.
const (
	seedNoisyRng    = 100 // training measurement jitter (DRL)
	seedNoisyStream = 101 // per-slot jitter streams (DRL)
	seedJitter      = 200 // workload-jitter scale draws
	seedModelRng    = 300 // model-based sampling + search
	seedModelNoisy  = 301 // model-based measurement jitter
	seedModelStream = 302 // model-based per-slot jitter streams
	seedDQNAgent    = 400 // DQN network init + exploration
	seedACAgent     = 500 // actor-critic network init + exploration
)

// Names lists the default registry's canonical scheduler names in
// comparison-set order.
func Names() []string { return Default.Names() }

// New constructs a scheduler from the default registry.
func New(name string, cfg Config) (Scheduler, error) { return Default.New(name, cfg) }
