package sched

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/env"
	"repro/internal/parallel"
	"repro/internal/svr"
	"repro/internal/topology"
)

// ModelBased reproduces the state-of-the-art model-based scheduler of Li et
// al. [25]: collect runtime statistics for candidate schedules, fit a
// supervised model (SVR) that predicts average tuple processing time from
// topology-aware features, then search the assignment space under the
// model's guidance.
//
// Its two failure modes called out in the paper (§1) are inherent here too:
// the features cannot capture every factor of end-to-end delay, and
// per-feature prediction error compounds — which is exactly why the DRL
// methods overtake it.
type ModelBased struct {
	Top *topology.Topology
	Cl  *cluster.Cluster
	Rng *rand.Rand

	// Samples is how many random schedules are measured to fit the model
	// (default 300).
	Samples int
	// SearchIters bounds the local-search moves (default 3·N).
	SearchIters int
	// Sem/Workers, when set, fan Fit's sample rollouts out over the
	// shared worker pool: the candidate schedules are drawn sequentially
	// (the Rng stream is untouched by scheduling), then measured
	// concurrently when the environment supports per-slot measurement
	// (env.SlotMeasurer), with results assembled by index — so the fitted
	// model is identical for every pool capacity.
	Sem     *parallel.Sem
	Workers int

	model *svr.SVR
}

// Name implements Scheduler.
func (*ModelBased) Name() string { return "Model-based" }

// features builds the predictor input for an assignment under the current
// workload. Following [25], the model composes topology-aware component
// estimates: the expected per-tuple transfer latency (communication-tier
// aware), the expected per-tuple serialization CPU, per-edge co-location
// fractions, sorted per-machine CPU demand, and the spout rates. The
// composition assumes delays add linearly — the simplification whose error
// the paper's §1 critique (and our reproduction) turns on: queueing and
// contention near saturation are anything but linear.
func (mb *ModelBased) features(assign []int, work []float64) []float64 {
	top, cl := mb.Top, mb.Cl
	m := cl.Size()

	// Component input rates assuming even splits (the model's
	// simplification — one source of its prediction error).
	compIn := map[string]float64{}
	spouts := top.Spouts()
	var totalSpout float64
	for i, sp := range spouts {
		rate := 0.0
		if i < len(work) {
			rate = work[i]
		}
		compIn[sp.Name] = rate
		totalSpout += rate
	}
	if totalSpout <= 0 {
		totalSpout = 1
	}
	for _, name := range top.Order() {
		c := top.Component(name)
		out := compIn[name] * c.Selectivity
		for _, e := range top.Out(name) {
			d := top.Component(e.To)
			if e.Grouping == topology.All {
				compIn[e.To] += out * float64(d.Parallelism)
			} else {
				compIn[e.To] += out
			}
		}
	}

	var feats []float64
	// Composed per-tuple transfer latency and serialization CPU: for each
	// edge, the traffic-weighted expected cost over (src task, dst task)
	// pairs — the estimate [25]'s per-edge delay predictors provide.
	var transferMS, serMS float64
	for _, e := range top.Edges {
		src, dst := top.Component(e.From), top.Component(e.To)
		sLo, _ := top.ExecutorRange(e.From)
		dLo, _ := top.ExecutorRange(e.To)
		edgeRate := compIn[e.From] * src.Selectivity
		co, pairs := 0, 0
		for st := 0; st < src.Parallelism; st++ {
			for dt := 0; dt < dst.Parallelism; dt++ {
				pairs++
				if assign[sLo+st] == assign[dLo+dt] {
					co++
				}
			}
		}
		frac := float64(co) / float64(pairs)
		crossRate := edgeRate * (1 - frac)
		localRate := edgeRate * frac
		transferMS += (crossRate*cl.TransferMS(0, 1, src.TupleBytes) +
			localRate*cl.IntraProcessMS) / totalSpout
		serMS += crossRate * cl.SerializeMS / totalSpout
		feats = append(feats, frac)
	}
	feats = append(feats, transferMS, serMS)

	// Sorted per-machine CPU demand (permutation-invariant for homogeneous
	// machines).
	load := make([]float64, m)
	for _, c := range top.Components {
		lo, hi := top.ExecutorRange(c.Name)
		perExec := compIn[c.Name] / float64(c.Parallelism) * c.ServiceMeanMS
		for x := lo; x < hi; x++ {
			load[assign[x]] += perExec
		}
	}
	sortFloats(load)
	feats = append(feats, load...)
	feats = append(feats, load[m-1]) // max load (hotspot indicator)

	// Workload rates.
	feats = append(feats, work...)
	return feats
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// capacityOK estimates per-machine CPU demand (the same topology-aware
// bookkeeping [25]'s model performs) and rejects assignments whose hottest
// machine exceeds 80% of capacity. The linear SVR cannot represent the
// overload cliff, so the search must not be allowed to walk off it; the
// margin also keeps chosen schedules stable through deployment warm-up.
func (mb *ModelBased) capacityOK(assign []int, work []float64) bool {
	top, cl := mb.Top, mb.Cl
	compIn := map[string]float64{}
	for i, sp := range top.Spouts() {
		if i < len(work) {
			compIn[sp.Name] = work[i]
		}
	}
	for _, name := range top.Order() {
		c := top.Component(name)
		out := compIn[name] * c.Selectivity
		for _, e := range top.Out(name) {
			d := top.Component(e.To)
			if e.Grouping == topology.All {
				compIn[e.To] += out * float64(d.Parallelism)
			} else {
				compIn[e.To] += out
			}
		}
	}
	load := make([]float64, cl.Size())
	for _, c := range top.Components {
		lo, hi := top.ExecutorRange(c.Name)
		// Charge half the serialization overhead (the average over mixed
		// placements): fully pessimistic accounting would veto the
		// consolidated schedules whose *lower* cross traffic is the whole
		// point of consolidating.
		perExec := compIn[c.Name] / float64(c.Parallelism) * (c.ServiceMeanMS + 0.5*cl.SerializeMS)
		for x := lo; x < hi; x++ {
			load[assign[x]] += perExec
		}
	}
	for m, l := range load {
		mach := cl.Machines[m]
		if l/1000 > 0.8*float64(mach.Cores)*mach.SpeedFactor {
			return false
		}
	}
	return true
}

// Fit measures random schedules on e and trains the SVR predictor.
func (mb *ModelBased) Fit(e env.Environment) error {
	samples := mb.Samples
	if samples <= 0 {
		samples = 300
	}
	n, m := e.N(), e.M()
	if n != mb.Top.NumExecutors() || m != mb.Cl.Size() {
		return fmt.Errorf("sched: model-based configured for %d×%d, env is %d×%d",
			mb.Top.NumExecutors(), mb.Cl.Size(), n, m)
	}
	// Draw every candidate first (sequentially — the Rng stream must not
	// depend on scheduling), then measure. When the environment supports
	// per-slot measurement the expensive rollouts fan out over the pool,
	// each drawing its jitter from its own slot stream, so y is
	// index-assembled and worker-count-invariant; otherwise they run in
	// index order on this goroutine.
	work := e.Workload()
	X := make([][]float64, 0, samples)
	y := make([]float64, samples)
	assigns := make([][]int, samples)
	for i := 0; i < samples; i++ {
		assign := make([]int, n)
		for j := range assign {
			assign[j] = mb.Rng.Intn(m)
		}
		assigns[i] = assign
		X = append(X, mb.features(assign, work))
	}
	if sm, ok := e.(env.SlotMeasurer); ok && sm.SlotsConcurrent() {
		_ = parallel.ForEachSem(context.Background(), mb.Sem, samples, mb.Workers, func(_ context.Context, i int) error {
			y[i] = sm.AvgTupleTimeMSSlot(int64(i), assigns[i])
			return nil
		})
	} else {
		for i, assign := range assigns {
			y[i] = e.AvgTupleTimeMS(assign)
		}
	}
	// Clip overload outliers at 10× the median latency so a handful of
	// saturated random schedules cannot dominate the regression.
	sorted := append([]float64(nil), y...)
	sortFloats(sorted)
	clip := 10 * sorted[len(sorted)/2]
	for i := range y {
		if y[i] > clip {
			y[i] = clip
		}
	}
	mb.model = svr.NewSVR(0.02)
	mb.model.Epochs = 80
	return mb.model.Fit(mb.Rng, X, y)
}

// Schedule implements Scheduler: if the model is not yet fitted it is
// trained first, then a steepest-descent local search over single-thread
// moves minimizes the *predicted* tuple processing time.
func (mb *ModelBased) Schedule(e env.Environment) ([]int, error) {
	if mb.model == nil {
		if err := mb.Fit(e); err != nil {
			return nil, err
		}
	}
	n, m := e.N(), e.M()
	work := e.Workload()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % m
	}
	best := mb.model.Predict(mb.features(assign, work))
	iters := mb.SearchIters
	if iters <= 0 {
		iters = 3 * n
	}
	for it := 0; it < iters; it++ {
		improved := false
		// One pass of first-improvement moves in random thread order.
		order := mb.Rng.Perm(n)
		for _, th := range order {
			orig := assign[th]
			bestMachine, bestVal := orig, best
			for mm := 0; mm < m; mm++ {
				if mm == orig {
					continue
				}
				assign[th] = mm
				if !mb.capacityOK(assign, work) {
					continue
				}
				v := mb.model.Predict(mb.features(assign, work))
				if v < bestVal {
					bestMachine, bestVal = mm, v
				}
			}
			assign[th] = bestMachine
			if bestMachine != orig {
				best = bestVal
				improved = true
			}
			it++
			if it >= iters {
				break
			}
		}
		if !improved {
			break
		}
	}
	return assign, nil
}
