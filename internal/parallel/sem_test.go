package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachSemRunsAllTasks checks basic coverage and index assembly for a
// range of capacities, including 0 (fully sequential on the caller).
func TestForEachSemRunsAllTasks(t *testing.T) {
	for _, capacity := range []int{0, 1, 3, 16} {
		s := NewSem(capacity)
		const n = 57
		var hits [n]atomic.Int32
		err := ForEachSem(context.Background(), s, n, 1, func(_ context.Context, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("cap %d: %v", capacity, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("cap %d: task %d ran %d times", capacity, i, got)
			}
		}
	}
}

// TestForEachSemNestedNoDeadlock is the deadlock-freedom pin for the shared
// semaphore: three nesting levels contend for a single token (and, in the
// zero-capacity case, for none at all). An outer task never holds a token
// while waiting on inner tasks — it lends its own goroutine to the inner
// level — so this must complete for any capacity.
func TestForEachSemNestedNoDeadlock(t *testing.T) {
	for _, capacity := range []int{0, 1, 2} {
		s := NewSem(capacity)
		var leaves atomic.Int32
		done := make(chan error, 1)
		go func() {
			done <- ForEachSem(context.Background(), s, 3, 1, func(ctx context.Context, _ int) error {
				return ForEachSem(ctx, s, 3, 1, func(ctx context.Context, _ int) error {
					return ForEachSem(ctx, s, 3, 1, func(_ context.Context, _ int) error {
						leaves.Add(1)
						return nil
					})
				})
			})
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("cap %d: %v", capacity, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("cap %d: nested ForEachSem deadlocked", capacity)
		}
		if got := leaves.Load(); got != 27 {
			t.Fatalf("cap %d: %d leaf tasks ran, want 27", capacity, got)
		}
	}
}

// TestForEachSemTailReclamation reproduces the ROADMAP scenario: a suite of
// four outer tasks on a pool of four (capacity 3 + the caller), where three
// outer tasks finish immediately and the last fans out into slow inner
// tasks. Under static pool division the last task would keep one worker;
// with the shared semaphore the tokens released by its finished siblings
// must be reclaimed by its inner level.
func TestForEachSemTailReclamation(t *testing.T) {
	s := NewSem(3)
	var (
		inFlight, peak atomic.Int32
		release        = make(chan struct{})
	)
	err := ForEachSem(context.Background(), s, 4, 1, func(ctx context.Context, i int) error {
		if i != 3 {
			return nil // fast siblings: release their tokens right away
		}
		return ForEachSem(ctx, s, 8, 1, func(_ context.Context, _ int) error {
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			if cur == 4 {
				select {
				case <-release:
				default:
					close(release)
				}
			}
			// Hold until full-width concurrency is observed (or give up
			// after a generous grace period so the test can fail with a
			// message instead of hanging).
			select {
			case <-release:
			case <-time.After(20 * time.Second):
			}
			inFlight.Add(-1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got < 4 {
		t.Fatalf("inner fan-out peaked at %d concurrent tasks, want the full pool of 4 reclaimed", got)
	}
}

// TestForEachSemFirstError checks error propagation and cancellation of
// unstarted tasks.
func TestForEachSemFirstError(t *testing.T) {
	s := NewSem(2)
	boom := errors.New("boom")
	var started atomic.Int32
	err := ForEachSem(context.Background(), s, 100, 1, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := started.Load(); n >= 100 {
		t.Fatalf("all %d tasks started despite early error", n)
	}
}

// TestForEachSemNilFallsBack ensures a nil Sem degrades to the plain
// bounded pool so single-figure call sites keep their old behavior.
func TestForEachSemNilFallsBack(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	err := ForEachSem(context.Background(), nil, 10, 2, func(_ context.Context, i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	})
	if err != nil || len(seen) != 10 {
		t.Fatalf("err=%v seen=%d", err, len(seen))
	}
}

// TestMapSemAssemblesByIndex pins the determinism contract for the shared
// pool: results land at their task index regardless of execution order.
func TestMapSemAssemblesByIndex(t *testing.T) {
	s := NewSem(4)
	out, err := MapSem(context.Background(), s, 32, 1, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
