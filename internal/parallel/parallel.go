// Package parallel provides the bounded worker pool behind the experiment
// engine: figure suites fan out across figures, and each figure fans out
// across its four schedulers and their deployment simulations.
//
// Determinism contract: ForEach/Map only decide *when* task i runs, never
// what it computes — every task must own its RNGs and scratch state, and
// results are assembled by index. Under that discipline a parallel run
// produces byte-identical output to a sequential (workers=1) run, which
// TestParallelFigureMatchesSequential in internal/experiments enforces.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// PoolSize returns the effective pool size for a workers setting: the
// setting itself when positive, else one worker per available CPU
// (GOMAXPROCS).
func PoolSize(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// Workers normalizes a worker-count setting for n tasks: PoolSize capped at
// n, and at least 1.
func Workers(workers, n int) int {
	w := PoolSize(workers)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded pool of
// workers goroutines (GOMAXPROCS-sized when workers <= 0). The first error
// cancels the derived context handed to the remaining tasks and is the one
// returned; tasks already running are waited for, so no task outlives the
// call. A canceled parent context stops new tasks from starting and is
// reported if no task failed first.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || ctx.Err() != nil {
				return
			}
			if err := fn(ctx, i); err != nil {
				errOnce.Do(func() {
					firstErr = err
					cancel()
				})
				return
			}
		}
	}
	w := Workers(workers, n)
	wg.Add(w)
	for i := 0; i < w; i++ {
		go worker()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Run executes a fixed set of heterogeneous tasks on the bounded pool —
// the convenience form of ForEach for "do these few independent things
// concurrently" call sites.
func Run(ctx context.Context, workers int, tasks ...func() error) error {
	return ForEach(ctx, len(tasks), workers, func(_ context.Context, i int) error {
		return tasks[i]()
	})
}

// Map is ForEach with order-stable result assembly: out[i] is fn's result
// for task i regardless of execution order, so parallel output is
// indistinguishable from a sequential loop. On error the partial results
// are discarded.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
