package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryTask(t *testing.T) {
	var count atomic.Int64
	seen := make([]atomic.Bool, 100)
	err := ForEach(context.Background(), 100, 8, func(_ context.Context, i int) error {
		count.Add(1)
		if seen[i].Swap(true) {
			t.Errorf("task %d ran twice", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", count.Load())
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	err := ForEach(context.Background(), 1000, 4, func(ctx context.Context, i int) error {
		if i == 3 {
			return boom
		}
		if ctx.Err() != nil {
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestForEachHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 1_000_000, 2, func(ctx context.Context, i int) error {
			if ran.Add(1) == 10 {
				cancel()
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ForEach did not stop after cancellation")
	}
	if ran.Load() >= 1_000_000 {
		t.Fatal("cancellation did not stop the work")
	}
}

func TestMapAssemblesInOrder(t *testing.T) {
	out, err := Map(context.Background(), 50, 8, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapDiscardsResultsOnError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(context.Background(), 10, 2, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || out != nil {
		t.Fatalf("got (%v, %v), want (nil, boom)", out, err)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(0, 3); w < 1 || w > 3 {
		t.Fatalf("Workers(0,3) = %d out of range", w)
	}
	if w := Workers(8, 2); w != 2 {
		t.Fatalf("Workers(8,2) = %d, want 2", w)
	}
	if w := Workers(2, 8); w != 2 {
		t.Fatalf("Workers(2,8) = %d, want 2", w)
	}
}
