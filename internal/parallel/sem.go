package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// Sem is a weighted semaphore shared across the nesting levels of a
// fan-out pipeline. It fixes the tail-reclamation problem of statically
// dividing a pool between levels: when an outer level (a figure suite)
// drains to its last slow task, the tokens released by the finished
// siblings become available to that task's *inner* fan-out immediately,
// instead of sitting idle in the outer level's static share.
//
// Deadlock freedom is structural, not a usage convention. ForEachSem never
// parks a goroutine that other work depends on: the calling goroutine runs
// tasks itself without ever acquiring a token (it *is* a worker already),
// and only helper goroutines block in Acquire — and those are abandoned
// (via context) the moment the task list is fully claimed, so nothing ever
// waits on a goroutine that is itself waiting for a token. An outer task
// therefore never holds tokens while waiting on inner tasks; it lends its
// own goroutine to the inner level instead, and while it is parked waiting
// for its helpers it lends its worker slot back to the pool (lend/unlend),
// so deeper levels can run on it.
type Sem struct {
	base int // nominal capacity (excludes lends)

	mu   sync.Mutex
	cap  int           // current capacity: base + active lends
	held int           // tokens currently held
	wake chan struct{} // closed and replaced whenever a token may free up
}

// NewSem returns a semaphore with the given capacity. Capacity n means at
// most n helper goroutines run concurrently on top of the calling
// goroutine, so total parallelism of a pipeline sharing the Sem is n+1.
// Capacity <= 0 yields a semaphore that never grants tokens — every
// ForEachSem level runs sequentially on its caller.
func NewSem(capacity int) *Sem {
	if capacity < 0 {
		capacity = 0
	}
	return &Sem{base: capacity, cap: capacity, wake: make(chan struct{})}
}

// Cap returns the nominal token capacity (lends excluded).
func (s *Sem) Cap() int { return s.base }

// Acquire blocks until a token is available or ctx is done, reporting
// whether a token was obtained.
func (s *Sem) Acquire(ctx context.Context) bool {
	for {
		s.mu.Lock()
		if s.held < s.cap {
			s.held++
			s.mu.Unlock()
			return true
		}
		wake := s.wake
		s.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return false
		}
	}
}

// Release returns a token.
func (s *Sem) Release() {
	s.mu.Lock()
	s.held--
	s.notifyLocked()
	s.mu.Unlock()
}

// lend temporarily raises capacity by one: a parked caller donates its
// worker slot to whoever is blocked in Acquire.
func (s *Sem) lend() {
	s.mu.Lock()
	s.cap++
	s.notifyLocked()
	s.mu.Unlock()
}

// unlend takes the donated slot back when the caller resumes.
func (s *Sem) unlend() {
	s.mu.Lock()
	s.cap--
	s.mu.Unlock()
}

// notifyLocked wakes every Acquire waiter to re-check availability.
func (s *Sem) notifyLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

// ForEachSem runs fn(ctx, i) for every i in [0, n), drawing extra
// parallelism from the shared semaphore. The calling goroutine claims and
// runs tasks in index order; up to min(s.Cap(), n-1) helper goroutines
// each wait for a token and join the task loop when one frees up, then
// release it when the work is gone. The first error cancels the context
// handed to remaining tasks and is returned; all spawned work is waited
// for, so no task outlives the call.
//
// The same determinism contract as ForEach applies: the semaphore only
// decides when (and on which goroutine) task i runs, never what it
// computes, and results must be assembled by index.
//
// A nil Sem falls back to ForEach with the workers setting, so call sites
// work unchanged when no shared pool is in play.
func ForEachSem(ctx context.Context, s *Sem, n, workers int, fn func(ctx context.Context, i int) error) error {
	if s == nil {
		return ForEach(ctx, n, workers, fn)
	}
	if n <= 0 {
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// acqCtx gates only the helpers' token waits: it is cancelled as soon
	// as every task has been claimed, so helpers never linger blocked in
	// Acquire after the work is spoken for.
	acqCtx, acqCancel := context.WithCancel(ctx)
	defer acqCancel()

	var (
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	runTasks := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				if i == n {
					acqCancel() // all tasks claimed; release waiting helpers
				}
				return
			}
			if ctx.Err() != nil {
				return
			}
			if err := fn(ctx, i); err != nil {
				errOnce.Do(func() {
					firstErr = err
					cancel()
				})
				return
			}
		}
	}

	helpers := s.Cap()
	if helpers > n-1 {
		helpers = n - 1
	}
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if int(next.Load()) >= n || !s.Acquire(acqCtx) {
				return
			}
			runTasks()
			s.Release()
		}()
	}
	runTasks()
	acqCancel()
	if helpers > 0 {
		// Parked until the helpers drain: donate this goroutine's worker
		// slot so the tail of the pipeline is not one slot short.
		s.lend()
		wg.Wait()
		s.unlend()
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// RunSem is the heterogeneous-task form of ForEachSem (the shared-pool
// analogue of Run).
func RunSem(ctx context.Context, s *Sem, workers int, tasks ...func() error) error {
	return ForEachSem(ctx, s, len(tasks), workers, func(_ context.Context, i int) error {
		return tasks[i]()
	})
}

// MapSem is ForEachSem with order-stable result assembly (the shared-pool
// analogue of Map). On error the partial results are discarded.
func MapSem[T any](ctx context.Context, s *Sem, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachSem(ctx, s, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
