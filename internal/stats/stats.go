// Package stats provides the metric post-processing used in the paper's
// evaluation: min-max reward normalization (r−rmin)/(rmax−rmin) and
// forward-backward (filtfilt) smoothing [20] for the online-learning reward
// curves (Figures 7, 9, 11), plus small running-statistics helpers.
package stats

import (
	"math"
	"sort"
)

// Normalize maps v affinely onto [0,1] using its own min and max, the
// paper's (r−rmin)/(rmax−rmin). A constant series maps to all zeros.
func Normalize(v []float64) []float64 {
	out := make([]float64, len(v))
	if len(v) == 0 {
		return out
	}
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		return out
	}
	for i, x := range v {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}

// FiltFilt applies a first-order low-pass filter forward and then backward
// over v, giving zero-phase smoothing in the style of the forward-backward
// filtering algorithm of Gustafsson [20]. alpha ∈ (0,1] is the new-sample
// weight; smaller is smoother. The input is not modified.
func FiltFilt(v []float64, alpha float64) []float64 {
	n := len(v)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	// Forward pass.
	out[0] = v[0]
	for i := 1; i < n; i++ {
		out[i] = alpha*v[i] + (1-alpha)*out[i-1]
	}
	// Backward pass over the forward result.
	for i := n - 2; i >= 0; i-- {
		out[i] = alpha*out[i] + (1-alpha)*out[i+1]
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation (0 for fewer than 2 values).
func Std(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Input is not modified.
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Running tracks a streaming mean and extrema without storing samples.
type Running struct {
	N        int
	Sum      float64
	Min, Max float64
}

// Add folds in one observation.
func (r *Running) Add(x float64) {
	if r.N == 0 {
		r.Min, r.Max = x, x
	} else {
		r.Min = math.Min(r.Min, x)
		r.Max = math.Max(r.Max, x)
	}
	r.N++
	r.Sum += x
}

// Mean returns the running mean (0 before any Add).
func (r *Running) Mean() float64 {
	if r.N == 0 {
		return 0
	}
	return r.Sum / float64(r.N)
}

// TailMean returns the mean of the last k elements of v (the paper reports
// "the average over the last 200 epochs" for reward curves).
func TailMean(v []float64, k int) float64 {
	if k > len(v) {
		k = len(v)
	}
	if k <= 0 {
		return 0
	}
	return Mean(v[len(v)-k:])
}
