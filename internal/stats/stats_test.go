package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 6})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("got %v want %v", out, want)
		}
	}
	if len(Normalize(nil)) != 0 {
		t.Fatal("empty input")
	}
	for _, v := range Normalize([]float64{3, 3, 3}) {
		if v != 0 {
			t.Fatal("constant series should normalize to zeros")
		}
	}
}

// Property: Normalize output is always within [0,1] and preserves order.
func TestNormalizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		for _, x := range raw {
			// Skip values where hi−lo itself overflows float64.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		out := Normalize(raw)
		for i, v := range out {
			if v < 0 || v > 1 {
				return false
			}
			for j := i + 1; j < len(out); j++ {
				if (raw[i] < raw[j]) != (out[i] < out[j]) && raw[i] != raw[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFiltFiltSmoothsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = math.Sin(float64(i)/50) + rng.NormFloat64()*0.5
	}
	sm := FiltFilt(raw, 0.1)
	// Smoothed residual vs clean signal should be much smaller than raw's.
	var rawErr, smErr float64
	for i := range raw {
		clean := math.Sin(float64(i) / 50)
		rawErr += (raw[i] - clean) * (raw[i] - clean)
		smErr += (sm[i] - clean) * (sm[i] - clean)
	}
	if smErr > rawErr/3 {
		t.Fatalf("smoothing ineffective: raw %v smoothed %v", rawErr, smErr)
	}
}

func TestFiltFiltPreservesConstant(t *testing.T) {
	v := []float64{5, 5, 5, 5}
	out := FiltFilt(v, 0.3)
	for _, x := range out {
		if math.Abs(x-5) > 1e-9 {
			t.Fatalf("constant distorted: %v", out)
		}
	}
}

func TestFiltFiltEdgeCases(t *testing.T) {
	if len(FiltFilt(nil, 0.5)) != 0 {
		t.Fatal("nil input")
	}
	// Bad alpha degrades to passthrough.
	v := []float64{1, 2, 3}
	out := FiltFilt(v, -1)
	for i := range v {
		if out[i] != v[i] {
			t.Fatal("alpha<=0 should pass through")
		}
	}
	// Input not modified.
	FiltFilt(v, 0.1)
	if v[0] != 1 || v[2] != 3 {
		t.Fatal("input mutated")
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("empty/short cases")
	}
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatalf("mean %v", Mean(v))
	}
	if math.Abs(Std(v)-2) > 1e-12 {
		t.Fatalf("std %v want 2", Std(v))
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{3, 1, 2, 4, 5}
	if Percentile(v, 0) != 1 || Percentile(v, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(v, 50) != 3 {
		t.Fatalf("median %v", Percentile(v, 50))
	}
	if got := Percentile(v, 75); got != 4 {
		t.Fatalf("p75 %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Input unsorted and unmodified.
	if v[0] != 3 {
		t.Fatal("input mutated")
	}
}

func TestRunning(t *testing.T) {
	var r Running
	if r.Mean() != 0 {
		t.Fatal("empty running mean")
	}
	for _, x := range []float64{1, 2, 3, 4} {
		r.Add(x)
	}
	if r.N != 4 || r.Mean() != 2.5 || r.Min != 1 || r.Max != 4 {
		t.Fatalf("running stats wrong: %+v mean=%v", r, r.Mean())
	}
}

func TestTailMean(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if TailMean(v, 2) != 3.5 {
		t.Fatalf("TailMean %v", TailMean(v, 2))
	}
	if TailMean(v, 10) != 2.5 {
		t.Fatal("k>len should use whole slice")
	}
	if TailMean(v, 0) != 0 || TailMean(nil, 5) != 0 {
		t.Fatal("degenerate cases")
	}
}
